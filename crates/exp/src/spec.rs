//! Campaign specifications and the spec-file parser.
//!
//! A campaign spec is a small, line-oriented text format (no external
//! parser dependencies — the build environment is offline):
//!
//! ```text
//! # Comments start with '#'; blank lines are ignored.
//! [campaign]
//! name = fig6-raid-comparison
//! seed = 42
//! model = markov-conventional        # markov-conventional | markov-failover
//!                                    # | generic-k-of-n | mc
//! capacity = 21                      # optional: equal-usable-capacity volume metrics
//!
//! [axes]                             # every `key = [..]` is a grid axis
//! raid = [r1, r5-3, r5-7]
//! hep = [0, 0.001, 0.01]
//! lambda = [1e-5]                    # scalars are one-point axes: lambda = 1e-5
//!
//! [mc]                               # read only when model = mc
//! iterations = 2000
//! horizon_hours = 87600
//! confidence = 0.99
//! variance = failure-biasing         # naive | failure-biasing | splitting
//! bias = 0.5                         # optional, failure-biasing only
//! # levels = 2 / effort = 64         # optional, splitting only
//! threads = 1                        # per-cell MC threads; 0 = auto
//!                                    # (machine parallelism); speed only,
//!                                    # results are bit-identical
//!
//! [fleet]                            # optional; requires model = mc
//! arrays = 100                       # arrays per cell: each mission
//!                                    # simulates the whole fleet
//! repairmen = 4                      # optional: finite repair-crew pool
//! dependence = high                  # optional THERP level: zero | low |
//!                                    # moderate | high | complete
//! domain_arrays = 10                 # optional (set both): shelf size and
//! domain_rate = 1e-5                 # strike rate of domain failures
//! failover_capacity = 4              # optional: shared DR site slots
//!                                    # (`inf` = ideal unbounded site)
//! failover_policy = queue            # full-site admission: queue | loss
//! failback_rate = 0.01               # optional switch-back rate per hour
//!                                    # (defaults to the disk-change rate)
//!
//! [lse]                              # optional; data-loss tier
//! lse_rate = 1e-4                    # latent-sector-error rate per
//!                                    # disk-hour (0 = bit-identical noop)
//! scrub_interval = 336               # scrub period in hours
//!
//! [telemetry]                        # optional; engine observability
//! metrics = metrics.json             # enables counters, names the snapshot
//! format = json                      # json | prom (requires `metrics`)
//! progress = true                    # stream per-cell progress to stderr
//! ```
//!
//! Recognised axes are `lambda` (disk failure rate per hour), `hep`
//! (human error probability), `raid` (geometry labels `r1`, `r5-K`,
//! `r6-K`), and `policy` (`conventional` | `failover`, overriding the
//! model's default replacement discipline per cell).

use crate::error::{ExpError, Result};
use availsim_core::mc::{DomainFailures, FleetCoupling, McVariance};
use availsim_hra::{DependenceLevel, Hep};
use availsim_storage::{FailoverPolicy, FleetFailover, FleetSpec, RaidGeometry, ScrubbingModel};
use std::fmt;

/// Which solver backend evaluates each cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelKind {
    /// The paper's Fig. 2 CTMC (conventional replacement); falls back to
    /// the generic k-of-n chain for multi-fault-tolerant geometries.
    #[default]
    MarkovConventional,
    /// The paper's Fig. 3 CTMC (automatic fail-over).
    MarkovFailover,
    /// The generic `(failed, wrongly-removed)` chain for any geometry.
    GenericKofN,
    /// The Monte-Carlo reference models.
    Mc,
}

impl ModelKind {
    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::MarkovConventional => "markov-conventional",
            ModelKind::MarkovFailover => "markov-failover",
            ModelKind::GenericKofN => "generic-k-of-n",
            ModelKind::Mc => "mc",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "markov-conventional" => Some(ModelKind::MarkovConventional),
            "markov-failover" => Some(ModelKind::MarkovFailover),
            "generic-k-of-n" => Some(ModelKind::GenericKofN),
            "mc" => Some(ModelKind::Mc),
            _ => None,
        }
    }

    /// The replacement discipline this model implies when the spec has no
    /// explicit `policy` axis.
    pub fn default_policy(self) -> Policy {
        match self {
            ModelKind::MarkovFailover => Policy::Failover,
            _ => Policy::Conventional,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Disk-replacement discipline of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Replace immediately upon failure (Fig. 2 semantics).
    #[default]
    Conventional,
    /// Rebuild into a hot spare first (Fig. 3 semantics).
    Failover,
}

impl Policy {
    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::Conventional => "conventional",
            Policy::Failover => "failover",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "conventional" => Some(Policy::Conventional),
            "failover" => Some(Policy::Failover),
            _ => None,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Output metrics a campaign can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Steady-state (or estimated) unavailability.
    Unavailability,
    /// Availability in nines.
    Nines,
    /// Downtime in minutes per year.
    Downtime,
    /// Mean time to data loss, hours (Markov models only).
    Mttdl,
    /// Half-width of the availability confidence interval (MC only).
    CiHalfWidth,
    /// Equal-capacity volume metrics (requires `capacity`).
    Volume,
}

impl Metric {
    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Metric::Unavailability => "unavailability",
            Metric::Nines => "nines",
            Metric::Downtime => "downtime",
            Metric::Mttdl => "mttdl",
            Metric::CiHalfWidth => "ci-half-width",
            Metric::Volume => "volume",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "unavailability" => Some(Metric::Unavailability),
            "nines" => Some(Metric::Nines),
            "downtime" => Some(Metric::Downtime),
            "mttdl" => Some(Metric::Mttdl),
            "ci-half-width" => Some(Metric::CiHalfWidth),
            "volume" => Some(Metric::Volume),
            _ => None,
        }
    }
}

/// Monte-Carlo settings, read from the `[mc]` section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McSettings {
    /// Missions per cell.
    pub iterations: u64,
    /// Mission time per iteration, hours.
    pub horizon_hours: f64,
    /// Confidence level of the availability interval.
    pub confidence: f64,
    /// Variance-reduction scheme (`variance = naive | failure-biasing |
    /// splitting`, tuned by the optional `bias` / `levels` / `effort`
    /// keys). Rides into [`availsim_core::mc::McConfig::variance`]
    /// unchanged.
    pub variance: McVariance,
    /// Threads per Monte-Carlo cell (`threads = N`; `0` means **auto**,
    /// the machine's available parallelism). Defaults to 1: campaign
    /// parallelism is across cells. A pure speed knob — the estimators
    /// are bit-identical at any thread count.
    pub threads: usize,
}

impl Default for McSettings {
    fn default() -> Self {
        McSettings {
            iterations: 2_000,
            horizon_hours: 87_600.0,
            confidence: 0.99,
            variance: McVariance::Naive,
            threads: 1,
        }
    }
}

/// The `[fleet]` section: fleet size plus the shared-resource couplings
/// of the fleet engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSettings {
    /// Arrays per cell (`arrays = N`); each mission simulates them all.
    pub arrays: u64,
    /// Finite repair-crew pool (`repairmen = c`); `None` is unlimited.
    pub repairmen: Option<u64>,
    /// THERP operator-dependence level (`dependence = high`).
    pub dependence: DependenceLevel,
    /// Arrays per failure domain (`domain_arrays`, set with `domain_rate`).
    pub domain_arrays: Option<u64>,
    /// Domain strike rate per hour (`domain_rate`).
    pub domain_rate: Option<f64>,
    /// Shared DR site slots (`failover_capacity = k | inf`): `None` is no
    /// DR site, `Some(None)` the ideal unbounded site.
    pub failover_capacity: Option<Option<u64>>,
    /// Full-site admission policy (`failover_policy = queue | loss`).
    pub failover_policy: FailoverPolicy,
    /// Switch-back rate per hour (`failback_rate`); `None` defaults to
    /// the model's disk-change rate at run time (switching service back
    /// is an operator-driven maintenance action like a disk swap).
    pub failback_rate: Option<f64>,
}

impl Default for FleetSettings {
    fn default() -> Self {
        FleetSettings {
            arrays: 0, // "not given yet": validation requires `arrays`
            repairmen: None,
            dependence: DependenceLevel::Zero,
            domain_arrays: None,
            domain_rate: None,
            failover_capacity: None,
            failover_policy: FailoverPolicy::Queue,
            failback_rate: None,
        }
    }
}

impl FleetSettings {
    /// The correlated-failure configuration these settings describe.
    pub fn coupling(&self) -> FleetCoupling {
        let domains = match (self.domain_arrays, self.domain_rate) {
            (Some(arrays), Some(rate)) => Some(DomainFailures {
                domain_arrays: u32::try_from(arrays).unwrap_or(u32::MAX),
                rate,
            }),
            _ => None,
        };
        FleetCoupling {
            dependence: self.dependence,
            domains,
        }
    }

    /// The DR fail-over configuration, if a `failover_capacity` was given;
    /// `default_failback_rate` fills an omitted `failback_rate`.
    pub fn failover(&self, default_failback_rate: f64) -> Option<FleetFailover> {
        self.failover_capacity.map(|capacity| FleetFailover {
            capacity: capacity.map(|v| u32::try_from(v).unwrap_or(u32::MAX)),
            policy: self.failover_policy,
            failback_rate: self.failback_rate.unwrap_or(default_failback_rate),
        })
    }
}

/// The `[lse]` section: latent-sector-error exposure for the data-loss
/// tier. Rides into [`availsim_core::ModelParams::with_scrubbing`] on every
/// cell, turning on LSE-aware rebuilds (and the `p_data_loss` / `nomdl`
/// report columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LseSettings {
    /// LSE arrival rate per disk, per hour (`lse_rate = 1e-4`). A rate of
    /// exactly `0` is a bit-identical no-op — the engines draw nothing.
    pub lse_rate: f64,
    /// Scrub period in hours (`scrub_interval = 336`).
    pub scrub_interval_hours: f64,
}

impl LseSettings {
    /// The exposure model these settings describe. Infallible: the parser
    /// and [`Scenario::validate`] enforce [`ScrubbingModel::new`]'s
    /// invariants before a campaign runs.
    pub fn model(&self) -> ScrubbingModel {
        ScrubbingModel {
            lse_rate: self.lse_rate,
            scrub_interval_hours: self.scrub_interval_hours,
        }
    }

    /// Whether the section actually changes the engines (`lse_rate > 0`).
    pub fn is_live(&self) -> bool {
        self.lse_rate > 0.0
    }
}

/// Metrics exposition format, from `[telemetry] format =` or the CLI's
/// `--metrics-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// A structured JSON snapshot (the default).
    #[default]
    Json,
    /// Prometheus text exposition format.
    Prometheus,
}

impl MetricsFormat {
    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Prometheus => "prom",
        }
    }

    /// Parses the spec/CLI spelling, returning `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(MetricsFormat::Json),
            "prom" | "prometheus" => Some(MetricsFormat::Prometheus),
            _ => None,
        }
    }
}

impl fmt::Display for MetricsFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The `[telemetry]` section: deterministic engine counters, exposition
/// format, and live campaign progress. Counter collection is keyed off
/// `metrics` being set — without a destination the registry stays disabled
/// and the engines skip all bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySettings {
    /// Metrics snapshot destination (`metrics = path`); `None` disables
    /// counter collection entirely.
    pub metrics: Option<String>,
    /// Exposition format for the snapshot (`format = json | prom`).
    pub format: MetricsFormat,
    /// Stream `cell k/N done` lines to stderr as cells finish.
    pub progress: bool,
}

impl TelemetrySettings {
    /// Whether engine counters should be collected.
    pub fn enabled(&self) -> bool {
        self.metrics.is_some()
    }
}

/// A fully described experiment campaign: the model kind, the grid axes,
/// and the reporting options. Produced by [`Scenario::parse`]; consumed by
/// [`crate::plan::expand`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Campaign name (used for report file names).
    pub name: String,
    /// Campaign master seed; per-cell seeds are substreams of it.
    pub seed: u64,
    /// Solver backend.
    pub model: ModelKind,
    /// Optional equal-usable-capacity (disk units) for volume metrics.
    pub capacity: Option<u64>,
    /// Metrics to report; empty means "all applicable".
    pub metrics: Vec<Metric>,
    /// Disk failure rates λ (per hour).
    pub lambda: Vec<f64>,
    /// Human error probabilities.
    pub hep: Vec<f64>,
    /// RAID geometries.
    pub raid: Vec<RaidGeometry>,
    /// Replacement policies; empty means the model's default.
    pub policy: Vec<Policy>,
    /// Monte-Carlo settings (ignored unless `model = mc`).
    pub mc: McSettings,
    /// The fleet engine's `[fleet]` section; `None` runs the single-array
    /// models.
    pub fleet: Option<FleetSettings>,
    /// The `[lse]` section; `None` leaves rebuilds LSE-free.
    pub lse: Option<LseSettings>,
    /// The `[telemetry]` section (engine counters, metrics exposition,
    /// progress streaming); all off by default.
    pub telemetry: TelemetrySettings,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "campaign".into(),
            seed: 0,
            model: ModelKind::MarkovConventional,
            capacity: None,
            metrics: Vec::new(),
            lambda: vec![1e-6],
            hep: vec![0.0],
            raid: vec![RaidGeometry::raid5(3).expect("3+1 is valid")],
            policy: Vec::new(),
            mc: McSettings::default(),
            fleet: None,
            lse: None,
            telemetry: TelemetrySettings::default(),
        }
    }
}

/// Parses a geometry label in the CLI's syntax (`r1`, `r5-K`, `r6-K`),
/// returning a bare message on failure — the CLI and the spec layer each
/// add their own framing.
///
/// # Errors
/// Returns the plain problem description for unknown labels or bad disk
/// counts.
pub fn parse_geometry_label(name: &str) -> std::result::Result<RaidGeometry, String> {
    if name == "r1" {
        return Ok(RaidGeometry::raid1_pair());
    }
    let (level, k) = name
        .split_once('-')
        .ok_or_else(|| format!("unknown raid `{name}` (use r1, r5-<k>, r6-<k>)"))?;
    let k: u32 = k
        .parse()
        .map_err(|_| format!("bad disk count in `{name}`"))?;
    match level {
        "r5" => RaidGeometry::raid5(k).map_err(|e| e.to_string()),
        "r6" => RaidGeometry::raid6(k).map_err(|e| e.to_string()),
        _ => Err(format!("unknown raid level `{level}`")),
    }
}

/// [`parse_geometry_label`] wrapped into the spec layer's error type.
///
/// # Errors
/// Returns [`ExpError::InvalidSpec`] for unknown labels or bad disk counts.
pub fn parse_geometry(name: &str) -> Result<RaidGeometry> {
    parse_geometry_label(name).map_err(ExpError::InvalidSpec)
}

/// One parsed `key = value` line, with the raw value split into list items.
struct Entry {
    line: usize,
    key: String,
    items: Vec<String>,
    is_list: bool,
}

fn parse_err(line: usize, message: impl Into<String>) -> ExpError {
    ExpError::Parse {
        line,
        message: message.into(),
    }
}

/// Splits a raw value into items: `[a, b, c]` becomes three items, a bare
/// scalar becomes one.
fn split_value(line: usize, raw: &str) -> Result<(Vec<String>, bool)> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(parse_err(line, "empty value"));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| parse_err(line, "unterminated list (missing `]`)"))?;
        let mut items: Vec<&str> = inner.split(',').map(str::trim).collect();
        // Tolerate exactly one trailing comma: `[a, b,]`.
        if items.len() > 1 && items.last().is_some_and(|s| s.is_empty()) {
            items.pop();
        }
        if items.len() == 1 && items[0].is_empty() {
            return Err(parse_err(line, "empty list"));
        }
        // An interior empty item is a typo (a value deleted mid-edit), not
        // something to silently shrink the grid over.
        if items.iter().any(|s| s.is_empty()) {
            return Err(parse_err(
                line,
                "empty list item (doubled, leading, or repeated trailing comma)",
            ));
        }
        Ok((items.into_iter().map(String::from).collect(), true))
    } else if raw.contains(']') {
        Err(parse_err(line, "unexpected `]` outside a list"))
    } else {
        Ok((vec![raw.to_string()], false))
    }
}

fn parse_f64(line: usize, key: &str, s: &str) -> Result<f64> {
    s.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| parse_err(line, format!("`{key}` expects a finite number, got `{s}`")))
}

fn parse_u64(line: usize, key: &str, s: &str) -> Result<u64> {
    s.parse::<u64>().map_err(|_| {
        parse_err(
            line,
            format!("`{key}` expects an unsigned integer, got `{s}`"),
        )
    })
}

fn scalar(e: &Entry) -> Result<&str> {
    if e.is_list || e.items.len() != 1 {
        return Err(parse_err(
            e.line,
            format!("`{}` expects a single value, not a list", e.key),
        ));
    }
    Ok(&e.items[0])
}

/// Combines the `[mc]` variance keys into a [`McVariance`], rejecting
/// tuning keys that do not belong to the selected scheme (a `bias` under
/// `splitting` is a spec mistake, not something to ignore).
fn combine_variance(
    name: Option<(usize, String)>,
    bias: Option<(usize, f64)>,
    levels: Option<(usize, u64)>,
    effort: Option<(usize, u64)>,
) -> Result<McVariance> {
    let (line, name) = match name {
        Some((line, name)) => (line, name),
        None => {
            let orphan = [
                bias.map(|(l, _)| (l, "bias")),
                levels.map(|(l, _)| (l, "levels")),
                effort.map(|(l, _)| (l, "effort")),
            ]
            .into_iter()
            .flatten()
            .next();
            if let Some((l, key)) = orphan {
                return Err(parse_err(
                    l,
                    format!("`{key}` requires a `variance` key in [mc]"),
                ));
            }
            return Ok(McVariance::Naive);
        }
    };
    let reject = |opt: Option<(usize, u64)>, key: &str, scheme: &str| -> Result<()> {
        match opt {
            Some((l, _)) => Err(parse_err(
                l,
                format!("`{key}` does not apply to `variance = {scheme}`"),
            )),
            None => Ok(()),
        }
    };
    // Out-of-range values are reported against the offending tuning key's
    // own line (falling back to the `variance` line for defaults).
    let (variance, err_line) = match name.as_str() {
        "naive" => {
            if let Some((l, _)) = bias {
                return Err(parse_err(l, "`bias` does not apply to `variance = naive`"));
            }
            reject(levels, "levels", "naive")?;
            reject(effort, "effort", "naive")?;
            (McVariance::Naive, line)
        }
        "failure-biasing" => {
            reject(levels, "levels", "failure-biasing")?;
            reject(effort, "effort", "failure-biasing")?;
            (
                McVariance::FailureBiasing {
                    bias: bias.map_or(McVariance::DEFAULT_BIAS, |(_, b)| b),
                },
                bias.map_or(line, |(l, _)| l),
            )
        }
        "splitting" => {
            if let Some((l, _)) = bias {
                return Err(parse_err(
                    l,
                    "`bias` does not apply to `variance = splitting`",
                ));
            }
            let lv = levels.map_or(u64::from(McVariance::DEFAULT_LEVELS), |(_, v)| v);
            let variance = McVariance::Splitting {
                levels: lv.min(u64::from(u32::MAX)) as u32,
                effort: effort.map_or(McVariance::DEFAULT_EFFORT, |(_, v)| v),
            };
            // Blame the least-valid key: a bad levels value wins, then a
            // bad effort value, then the `variance` line itself.
            let err_line = if lv < 1 {
                levels.map_or(line, |(l, _)| l)
            } else {
                effort.map_or(line, |(l, _)| l)
            };
            (variance, err_line)
        }
        other => {
            return Err(parse_err(
                line,
                format!("unknown variance `{other}` (use naive, failure-biasing, splitting)"),
            ))
        }
    };
    variance
        .validate()
        .map_err(|e| parse_err(err_line, e.to_string()))?;
    Ok(variance)
}

impl Scenario {
    /// Parses a spec file's contents.
    ///
    /// # Errors
    /// Returns [`ExpError::Parse`] with a 1-based line number for syntax
    /// errors, unknown sections/keys, or out-of-range values, and
    /// [`ExpError::InvalidSpec`] for semantic problems (e.g. a `capacity`
    /// that no geometry tiles).
    pub fn parse(text: &str) -> Result<Self> {
        let mut section: Option<String> = None;
        let mut entries: Vec<(String, Entry)> = Vec::new();
        let mut saw_campaign = false;

        for (idx, raw_line) in text.lines().enumerate() {
            let line = idx + 1;
            let content = match raw_line.split_once('#') {
                Some((before, _)) => before,
                None => raw_line,
            }
            .trim();
            if content.is_empty() {
                continue;
            }
            if let Some(name) = content.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| parse_err(line, "unterminated section header"))?
                    .trim()
                    .to_ascii_lowercase();
                match name.as_str() {
                    "campaign" | "axes" | "mc" | "fleet" | "lse" | "telemetry" => {
                        saw_campaign |= name == "campaign";
                        section = Some(name);
                    }
                    other => {
                        return Err(parse_err(
                            line,
                            format!(
                                "unknown section `[{other}]` \
                                 (use [campaign], [axes], [mc], [fleet], [lse], [telemetry])"
                            ),
                        ))
                    }
                }
                continue;
            }
            let (key, value) = content.split_once('=').ok_or_else(|| {
                parse_err(line, format!("expected `key = value`, got `{content}`"))
            })?;
            let key = key.trim().to_ascii_lowercase();
            if key.is_empty() {
                return Err(parse_err(line, "missing key before `=`"));
            }
            let sec = section
                .clone()
                .ok_or_else(|| parse_err(line, "`key = value` before any [section] header"))?;
            let (items, is_list) = split_value(line, value)?;
            if entries.iter().any(|(s, e)| *s == sec && e.key == key) {
                return Err(parse_err(line, format!("duplicate key `{key}` in [{sec}]")));
            }
            entries.push((
                sec,
                Entry {
                    line,
                    key,
                    items,
                    is_list,
                },
            ));
        }

        if !saw_campaign {
            return Err(parse_err(0, "missing [campaign] section"));
        }

        let mut scenario = Scenario::default();
        // The variance keys combine after the scan (the tuning keys may
        // appear before or after `variance` in the file).
        let mut variance_name: Option<(usize, String)> = None;
        let mut bias: Option<(usize, f64)> = None;
        let mut levels: Option<(usize, u64)> = None;
        let mut effort: Option<(usize, u64)> = None;
        // `format` is checked after the scan: it is an error without a
        // `metrics` destination, which may appear later in the section.
        let mut metrics_format: Option<(usize, String)> = None;
        // The failover keys are cross-checked after the scan (they need
        // `arrays`, and the tuning keys need `failover_capacity`, either
        // of which may appear later in the section).
        let mut failover_capacity: Option<(usize, Option<u64>)> = None;
        let mut failover_policy: Option<(usize, FailoverPolicy)> = None;
        let mut failback_rate: Option<(usize, f64)> = None;
        // The [lse] keys are cross-checked after the scan: they must come
        // as a pair, and a live rate needs a model with LSE-aware rebuilds
        // (which may be declared after the section).
        let mut lse_rate: Option<(usize, f64)> = None;
        let mut scrub_interval: Option<(usize, f64)> = None;

        for (sec, e) in &entries {
            match (sec.as_str(), e.key.as_str()) {
                ("campaign", "name") => {
                    scenario.name = scalar(e)?.to_string();
                    if !scenario
                        .name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                    {
                        return Err(parse_err(
                            e.line,
                            "campaign name may only contain [A-Za-z0-9._-]",
                        ));
                    }
                }
                ("campaign", "seed") => scenario.seed = parse_u64(e.line, "seed", scalar(e)?)?,
                ("campaign", "model") => {
                    let s = scalar(e)?;
                    scenario.model = ModelKind::parse(s).ok_or_else(|| {
                        parse_err(
                            e.line,
                            format!(
                                "unknown model `{s}` (use markov-conventional, markov-failover, \
                                 generic-k-of-n, mc)"
                            ),
                        )
                    })?;
                }
                ("campaign", "capacity") => {
                    scenario.capacity = Some(parse_u64(e.line, "capacity", scalar(e)?)?);
                }
                ("campaign", "metrics") => {
                    scenario.metrics = e
                        .items
                        .iter()
                        .map(|s| {
                            Metric::parse(s)
                                .ok_or_else(|| parse_err(e.line, format!("unknown metric `{s}`")))
                        })
                        .collect::<Result<_>>()?;
                }
                ("axes", "lambda") => {
                    scenario.lambda = e
                        .items
                        .iter()
                        .map(|s| parse_f64(e.line, "lambda", s))
                        .collect::<Result<_>>()?;
                }
                ("axes", "hep") => {
                    scenario.hep = e
                        .items
                        .iter()
                        .map(|s| parse_f64(e.line, "hep", s))
                        .collect::<Result<_>>()?;
                }
                ("axes", "raid") => {
                    scenario.raid = e
                        .items
                        .iter()
                        .map(|s| parse_geometry(s))
                        .collect::<Result<_>>()?;
                }
                ("axes", "policy") => {
                    scenario.policy = e
                        .items
                        .iter()
                        .map(|s| {
                            Policy::parse(s).ok_or_else(|| {
                                parse_err(
                                    e.line,
                                    format!("unknown policy `{s}` (use conventional, failover)"),
                                )
                            })
                        })
                        .collect::<Result<_>>()?;
                }
                ("mc", "iterations") => {
                    scenario.mc.iterations = parse_u64(e.line, "iterations", scalar(e)?)?;
                }
                ("mc", "horizon_hours") => {
                    scenario.mc.horizon_hours = parse_f64(e.line, "horizon_hours", scalar(e)?)?;
                }
                ("mc", "confidence") => {
                    scenario.mc.confidence = parse_f64(e.line, "confidence", scalar(e)?)?;
                }
                ("mc", "variance") => {
                    variance_name = Some((e.line, scalar(e)?.to_string()));
                }
                ("mc", "bias") => {
                    bias = Some((e.line, parse_f64(e.line, "bias", scalar(e)?)?));
                }
                ("mc", "levels") => {
                    levels = Some((e.line, parse_u64(e.line, "levels", scalar(e)?)?));
                }
                ("mc", "effort") => {
                    effort = Some((e.line, parse_u64(e.line, "effort", scalar(e)?)?));
                }
                ("mc", "threads") => {
                    // 0 is the documented "auto" spelling (machine
                    // parallelism) — the same contract as `--threads 0`.
                    let threads = parse_u64(e.line, "threads", scalar(e)?)?;
                    scenario.mc.threads = usize::try_from(threads).map_err(|_| {
                        parse_err(e.line, format!("mc threads {threads} is too large"))
                    })?;
                }
                ("fleet", "arrays") => {
                    let arrays = parse_u64(e.line, "arrays", scalar(e)?)?;
                    if arrays == 0 {
                        return Err(parse_err(e.line, "fleet needs at least one array"));
                    }
                    scenario.fleet.get_or_insert_with(Default::default).arrays = arrays;
                }
                ("fleet", "repairmen") => {
                    let crews = parse_u64(e.line, "repairmen", scalar(e)?)?;
                    if crews == 0 {
                        return Err(parse_err(
                            e.line,
                            "fleet needs at least one repair crew \
                             (omit `repairmen` for an unlimited pool)",
                        ));
                    }
                    scenario
                        .fleet
                        .get_or_insert_with(Default::default)
                        .repairmen = Some(crews);
                }
                ("fleet", "dependence") => {
                    let raw = scalar(e)?;
                    let level = DependenceLevel::parse(raw).ok_or_else(|| {
                        parse_err(
                            e.line,
                            format!(
                                "unknown dependence `{raw}` \
                                 (use zero, low, moderate, high, complete)"
                            ),
                        )
                    })?;
                    scenario
                        .fleet
                        .get_or_insert_with(Default::default)
                        .dependence = level;
                }
                ("fleet", "domain_arrays") => {
                    let arrays = parse_u64(e.line, "domain_arrays", scalar(e)?)?;
                    if arrays == 0 {
                        return Err(parse_err(
                            e.line,
                            "failure domain needs at least one array per shelf",
                        ));
                    }
                    scenario
                        .fleet
                        .get_or_insert_with(Default::default)
                        .domain_arrays = Some(arrays);
                }
                ("fleet", "domain_rate") => {
                    let rate = parse_f64(e.line, "domain_rate", scalar(e)?)?;
                    if !(rate.is_finite() && rate > 0.0) {
                        return Err(parse_err(
                            e.line,
                            format!("domain failure rate must be positive and finite, got {rate}"),
                        ));
                    }
                    scenario
                        .fleet
                        .get_or_insert_with(Default::default)
                        .domain_rate = Some(rate);
                }
                ("fleet", "failover_capacity") => {
                    let raw = scalar(e)?;
                    let cap = if raw == "inf" {
                        None
                    } else {
                        let v = parse_u64(e.line, "failover_capacity", raw)?;
                        if v == 0 {
                            return Err(parse_err(
                                e.line,
                                "DR site needs at least one failover slot \
                                 (use `inf` for an ideal site, or omit the key for none)",
                            ));
                        }
                        if u32::try_from(v).is_err() {
                            return Err(parse_err(
                                e.line,
                                format!("failover_capacity {v} is too large"),
                            ));
                        }
                        Some(v)
                    };
                    failover_capacity = Some((e.line, cap));
                }
                ("fleet", "failover_policy") => {
                    let raw = scalar(e)?;
                    let policy = FailoverPolicy::parse(raw).ok_or_else(|| {
                        parse_err(
                            e.line,
                            format!("unknown failover policy `{raw}` (use queue, loss)"),
                        )
                    })?;
                    failover_policy = Some((e.line, policy));
                }
                ("fleet", "failback_rate") => {
                    let rate = parse_f64(e.line, "failback_rate", scalar(e)?)?;
                    if !(rate.is_finite() && rate > 0.0) {
                        return Err(parse_err(
                            e.line,
                            format!("fail-back rate must be positive and finite, got {rate}"),
                        ));
                    }
                    failback_rate = Some((e.line, rate));
                }
                ("lse", "lse_rate") => {
                    let rate = parse_f64(e.line, "lse_rate", scalar(e)?)?;
                    if rate < 0.0 {
                        return Err(parse_err(
                            e.line,
                            format!("LSE rate must be nonnegative, got {rate}"),
                        ));
                    }
                    lse_rate = Some((e.line, rate));
                }
                ("lse", "scrub_interval") => {
                    let hours = parse_f64(e.line, "scrub_interval", scalar(e)?)?;
                    if hours <= 0.0 {
                        return Err(parse_err(
                            e.line,
                            format!("scrub interval must be positive, got {hours}"),
                        ));
                    }
                    scrub_interval = Some((e.line, hours));
                }
                ("telemetry", "metrics") => {
                    scenario.telemetry.metrics = Some(scalar(e)?.to_string());
                }
                ("telemetry", "format") => {
                    metrics_format = Some((e.line, scalar(e)?.to_string()));
                }
                ("telemetry", "progress") => {
                    let raw = scalar(e)?;
                    scenario.telemetry.progress = match raw {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(parse_err(
                                e.line,
                                format!("`progress` expects true or false, got `{raw}`"),
                            ))
                        }
                    };
                }
                (sec, key) => {
                    return Err(parse_err(e.line, format!("unknown key `{key}` in [{sec}]")));
                }
            }
        }

        scenario.mc.variance = combine_variance(variance_name, bias, levels, effort)?;
        if let Some((line, raw)) = metrics_format {
            if scenario.telemetry.metrics.is_none() {
                return Err(parse_err(
                    line,
                    "`format` requires a `metrics` destination in [telemetry]",
                ));
            }
            scenario.telemetry.format = MetricsFormat::parse(&raw).ok_or_else(|| {
                parse_err(line, format!("unknown format `{raw}` (use json, prom)"))
            })?;
        }
        if let Some((line, cap)) = failover_capacity {
            let fleet = scenario.fleet.get_or_insert_with(Default::default);
            if fleet.arrays == 0 {
                return Err(parse_err(
                    line,
                    "`failover_capacity` requires `arrays` in [fleet]",
                ));
            }
            fleet.failover_capacity = Some(cap);
            if let Some((_, policy)) = failover_policy {
                fleet.failover_policy = policy;
            }
            if let Some((_, rate)) = failback_rate {
                fleet.failback_rate = Some(rate);
            }
        } else {
            let orphan = [
                failover_policy.map(|(l, _)| (l, "failover_policy")),
                failback_rate.map(|(l, _)| (l, "failback_rate")),
            ]
            .into_iter()
            .flatten()
            .next();
            if let Some((l, key)) = orphan {
                return Err(parse_err(
                    l,
                    format!("`{key}` requires a `failover_capacity` key in [fleet]"),
                ));
            }
        }
        match (lse_rate, scrub_interval) {
            (None, None) => {}
            (Some((rate_line, rate)), Some((_, hours))) => {
                scenario.lse = Some(LseSettings {
                    lse_rate: rate,
                    scrub_interval_hours: hours,
                });
                // A live rate needs an engine with LSE-aware rebuilds; the
                // Fig. 3 chain and the fail-over engine reject latent
                // sector errors rather than silently ignore them.
                if rate > 0.0 {
                    if let Some(problem) = scenario.lse_support_problem() {
                        return Err(parse_err(rate_line, problem));
                    }
                }
            }
            (Some((line, _)), None) | (None, Some((line, _))) => {
                return Err(parse_err(
                    line,
                    "`lse_rate` and `scrub_interval` must be set together in [lse]",
                ));
            }
        }
        scenario.validate()?;
        Ok(scenario)
    }

    /// Semantic validation of a (parsed or hand-built) scenario.
    ///
    /// # Errors
    /// Returns [`ExpError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(ExpError::InvalidSpec("campaign name is empty".into()));
        }
        if self.lambda.is_empty() || self.hep.is_empty() || self.raid.is_empty() {
            return Err(ExpError::InvalidSpec(
                "every axis needs at least one value".into(),
            ));
        }
        for &l in &self.lambda {
            if !(l.is_finite() && l > 0.0) {
                return Err(ExpError::InvalidSpec(format!(
                    "lambda values must be positive, got {l}"
                )));
            }
        }
        for &h in &self.hep {
            // Hep::new enforces [0, 1]; the repairable chains additionally
            // need hep < 1, which the models report at run time.
            Hep::new(h)?;
        }
        if let Some(cap) = self.capacity {
            for g in &self.raid {
                g.arrays_for_usable_capacity(cap)?;
            }
        }
        // An explicitly requested metric the run can never fill would
        // produce an all-blank report column; reject it up front.
        for &m in &self.metrics {
            match m {
                Metric::Volume if self.capacity.is_none() => {
                    return Err(ExpError::InvalidSpec(
                        "metric `volume` requires `capacity` to be set".into(),
                    ));
                }
                Metric::Mttdl if self.model == ModelKind::Mc => {
                    return Err(ExpError::InvalidSpec(
                        "metric `mttdl` is not produced by the mc model".into(),
                    ));
                }
                Metric::CiHalfWidth if self.model != ModelKind::Mc => {
                    return Err(ExpError::InvalidSpec(
                        "metric `ci-half-width` requires `model = mc`".into(),
                    ));
                }
                _ => {}
            }
        }
        if self.model == ModelKind::Mc && self.mc.iterations < 2 {
            return Err(ExpError::InvalidSpec(
                "mc iterations must be at least 2".into(),
            ));
        }
        if self.model == ModelKind::Mc
            && !(self.mc.horizon_hours.is_finite() && self.mc.horizon_hours > 0.0)
        {
            return Err(ExpError::InvalidSpec(format!(
                "mc horizon_hours must be positive, got {}",
                self.mc.horizon_hours
            )));
        }
        if self.model == ModelKind::Mc && !(self.mc.confidence > 0.0 && self.mc.confidence < 1.0) {
            return Err(ExpError::InvalidSpec(format!(
                "mc confidence must be in (0,1), got {}",
                self.mc.confidence
            )));
        }
        if self.model == ModelKind::Mc
            && matches!(self.mc.variance, McVariance::Splitting { .. })
            && self.effective_policies().contains(&Policy::Failover)
        {
            return Err(ExpError::InvalidSpec(
                "variance = splitting applies to the conventional policy only \
                 (the fail-over chain is fully exponential; use failure-biasing)"
                    .into(),
            ));
        }
        if let Some(fleet) = self.fleet {
            if self.model != ModelKind::Mc {
                return Err(ExpError::InvalidSpec(
                    "[fleet] requires `model = mc` (the fleet engine is a \
                     Monte-Carlo simulation)"
                        .into(),
                ));
            }
            if self.effective_policies().contains(&Policy::Failover) {
                return Err(ExpError::InvalidSpec(
                    "[fleet] applies to the conventional policy only".into(),
                ));
            }
            if self.mc.variance != McVariance::Naive {
                return Err(ExpError::InvalidSpec(format!(
                    "[fleet] supports naive sampling only (fleet-level outages \
                     are not rare events), got variance = {}",
                    self.mc.variance
                )));
            }
            let arrays = u32::try_from(fleet.arrays).map_err(|_| {
                ExpError::InvalidSpec(format!("fleet arrays {} is too large", fleet.arrays))
            })?;
            for &g in &self.raid {
                let spec =
                    FleetSpec::new(arrays, g).map_err(|e| ExpError::InvalidSpec(e.to_string()))?;
                if let Some(crews) = fleet.repairmen {
                    let crews = u32::try_from(crews).map_err(|_| {
                        ExpError::InvalidSpec(format!("fleet repairmen {crews} is too large"))
                    })?;
                    spec.with_repairmen(crews)
                        .map_err(|e| ExpError::InvalidSpec(e.to_string()))?;
                }
                if let Some(capacity) = fleet.failover_capacity {
                    if let Some(v) = capacity {
                        u32::try_from(v).map_err(|_| {
                            ExpError::InvalidSpec(format!(
                                "fleet failover_capacity {v} is too large"
                            ))
                        })?;
                    }
                    // An omitted failback_rate is filled per cell at run
                    // time; a valid placeholder validates the rest.
                    spec.with_failover(FleetFailover {
                        capacity: capacity.map(|v| u32::try_from(v).unwrap_or(u32::MAX)),
                        policy: fleet.failover_policy,
                        failback_rate: fleet.failback_rate.unwrap_or(1.0),
                    })
                    .map_err(|e| ExpError::InvalidSpec(e.to_string()))?;
                }
            }
            match (fleet.domain_arrays, fleet.domain_rate) {
                (None, None) | (Some(_), Some(_)) => {}
                _ => {
                    return Err(ExpError::InvalidSpec(
                        "`domain_arrays` and `domain_rate` must be set together".into(),
                    ));
                }
            }
            if let Some(domain) = fleet.domain_arrays {
                if domain > fleet.arrays {
                    return Err(ExpError::InvalidSpec(format!(
                        "failure domain of {domain} arrays exceeds the fleet of {}",
                        fleet.arrays
                    )));
                }
            }
        }
        if let Some(lse) = self.lse {
            // Re-check the invariants for hand-built scenarios (the parser
            // reports the same problems with line numbers).
            ScrubbingModel::new(lse.lse_rate, lse.scrub_interval_hours)
                .map_err(|e| ExpError::InvalidSpec(e.to_string()))?;
            if lse.is_live() {
                if let Some(problem) = self.lse_support_problem() {
                    return Err(ExpError::InvalidSpec(problem));
                }
            }
        }
        Ok(())
    }

    /// Why a **live** `[lse]` section cannot run under this scenario's
    /// model/policy combination, or `None` when every cell supports
    /// LSE-aware rebuilds. The Fig. 3 exact chain and the fail-over MC
    /// engine reject latent sector errors at construction; catching the
    /// combination here turns a per-cell run failure into an up-front
    /// spec error.
    fn lse_support_problem(&self) -> Option<String> {
        if self.model == ModelKind::MarkovFailover {
            return Some(
                "model `markov-failover` does not support LSE-aware rebuilds \
                 (the Fig. 3 chain has no rebuild completion to split; \
                 pick another model, or set `lse_rate = 0`)"
                    .into(),
            );
        }
        if self.effective_policies().contains(&Policy::Failover) {
            return Some(
                "the failover policy does not support LSE-aware rebuilds \
                 (restrict the `policy` axis to conventional, or set \
                 `lse_rate = 0`)"
                    .into(),
            );
        }
        None
    }

    /// The policies the grid will iterate over: the explicit `policy` axis,
    /// or the model's default as a one-point axis.
    pub fn effective_policies(&self) -> Vec<Policy> {
        if self.policy.is_empty() {
            vec![self.model.default_policy()]
        } else {
            self.policy.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# demo campaign
[campaign]
name = demo
seed = 9
model = markov-conventional
capacity = 21

[axes]
raid = [r1, r5-3, r5-7]
hep = [0, 0.001, 0.01]   # three heps
lambda = 1e-5
";

    #[test]
    fn parses_a_full_spec() {
        let s = Scenario::parse(SPEC).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.seed, 9);
        assert_eq!(s.model, ModelKind::MarkovConventional);
        assert_eq!(s.capacity, Some(21));
        assert_eq!(s.raid.len(), 3);
        assert_eq!(s.hep, vec![0.0, 0.001, 0.01]);
        assert_eq!(s.lambda, vec![1e-5]);
        assert_eq!(s.effective_policies(), vec![Policy::Conventional]);
    }

    #[test]
    fn scalar_axis_is_a_one_point_axis() {
        let s = Scenario::parse("[campaign]\nname = x\n[axes]\nlambda = 2e-6\n").unwrap();
        assert_eq!(s.lambda, vec![2e-6]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = Scenario::parse("# top\n\n[campaign]\n  name = c1  # trailing\n\n").unwrap();
        assert_eq!(s.name, "c1");
    }

    #[test]
    fn missing_campaign_section_is_an_error() {
        let e = Scenario::parse("[axes]\nlambda = 1e-6\n").unwrap_err();
        assert!(e.to_string().contains("[campaign]"), "{e}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Scenario::parse("[campaign]\nname = x\nbogus_key = 1\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");

        let e = Scenario::parse("[campaign]\nname = x\nseed = abc\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");

        let e = Scenario::parse("[campaign]\nname = x\n[axes]\nhep = [0.1, oops]\n").unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let e = Scenario::parse("[campaign]\nname = a\nname = b\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key"), "{e}");
    }

    #[test]
    fn unterminated_list_is_rejected() {
        let e = Scenario::parse("[campaign]\nname = x\n[axes]\nhep = [0, 0.1\n").unwrap_err();
        assert!(e.to_string().contains("unterminated list"), "{e}");
    }

    #[test]
    fn interior_empty_list_items_are_rejected_not_dropped() {
        // A value deleted mid-edit must not silently shrink the grid.
        for bad in [
            "hep = [0, , 0.01]",
            "hep = [, 0.01]",
            "hep = [0, 0.01,,]",
            "hep = []",
        ] {
            let spec = format!("[campaign]\nname = x\n[axes]\n{bad}\n");
            let e = Scenario::parse(&spec).unwrap_err();
            assert!(e.to_string().contains("empty list"), "{bad}: {e}");
        }
        // One trailing comma is fine and keeps the full axis.
        let s = Scenario::parse("[campaign]\nname = x\n[axes]\nhep = [0, 0.01,]\n").unwrap();
        assert_eq!(s.hep, vec![0.0, 0.01]);
    }

    #[test]
    fn unknown_section_model_policy_metric_are_rejected() {
        assert!(Scenario::parse("[wat]\nx = 1\n").is_err());
        assert!(Scenario::parse("[campaign]\nname = x\nmodel = quantum\n").is_err());
        assert!(Scenario::parse("[campaign]\nname = x\n[axes]\npolicy = [magic]\n").is_err());
        assert!(Scenario::parse("[campaign]\nname = x\nmetrics = [vibes]\n").is_err());
    }

    #[test]
    fn semantic_validation_catches_bad_values() {
        assert!(Scenario::parse("[campaign]\nname = x\n[axes]\nlambda = -1e-6\n").is_err());
        assert!(Scenario::parse("[campaign]\nname = x\n[axes]\nhep = 1.5\n").is_err());
        // Capacity 10 tiles no default geometry (r5-3 usable = 3).
        assert!(Scenario::parse("[campaign]\nname = x\ncapacity = 10\n").is_err());
        // Name with a path separator is rejected (it becomes a file name).
        assert!(Scenario::parse("[campaign]\nname = ../evil\n").is_err());
    }

    #[test]
    fn geometry_labels_parse_like_the_cli() {
        assert_eq!(parse_geometry("r1").unwrap().total_disks(), 2);
        assert_eq!(parse_geometry("r5-3").unwrap().label(), "RAID5(3+1)");
        assert_eq!(parse_geometry("r6-6").unwrap().label(), "RAID6(6+2)");
        assert!(parse_geometry("r9-3").is_err());
        assert!(parse_geometry("r5-x").is_err());
        assert!(parse_geometry("raid5").is_err());
    }

    #[test]
    fn inapplicable_metrics_are_rejected_up_front() {
        // volume without capacity, mttdl under mc, ci-half-width under markov:
        // each would yield an all-blank column, so each is a spec error.
        let e = Scenario::parse("[campaign]\nname = x\nmetrics = [volume]\n").unwrap_err();
        assert!(e.to_string().contains("requires `capacity`"), "{e}");
        let e =
            Scenario::parse("[campaign]\nname = x\nmodel = mc\nmetrics = [mttdl]\n").unwrap_err();
        assert!(e.to_string().contains("not produced by the mc"), "{e}");
        let e = Scenario::parse("[campaign]\nname = x\nmetrics = [ci-half-width]\n").unwrap_err();
        assert!(e.to_string().contains("requires `model = mc`"), "{e}");
        // The same metrics are fine when applicable.
        assert!(
            Scenario::parse("[campaign]\nname = x\ncapacity = 3\nmetrics = [volume]\n").is_ok()
        );
        assert!(
            Scenario::parse("[campaign]\nname = x\nmodel = mc\nmetrics = [ci-half-width]\n")
                .is_ok()
        );
    }

    #[test]
    fn mc_section_round_trips() {
        let s = Scenario::parse(
            "[campaign]\nname = m\nmodel = mc\n[mc]\niterations = 500\nhorizon_hours = 1000\nconfidence = 0.9\n",
        )
        .unwrap();
        assert_eq!(s.mc.iterations, 500);
        assert_eq!(s.mc.horizon_hours, 1000.0);
        assert_eq!(s.mc.confidence, 0.9);
        assert_eq!(s.mc.variance, McVariance::Naive);
        assert_eq!(s.mc.threads, 1, "threads defaults to 1");
        assert!(
            Scenario::parse("[campaign]\nname = m\nmodel = mc\n[mc]\niterations = 1\n").is_err()
        );
    }

    #[test]
    fn mc_threads_parses_explicit_auto_and_rejects_junk_with_line() {
        let base = "[campaign]\nname = t\nmodel = mc\n[mc]\n";
        let s = Scenario::parse(&format!("{base}threads = 4\n")).unwrap();
        assert_eq!(s.mc.threads, 4);
        // 0 is the documented auto spelling, not an error.
        let s = Scenario::parse(&format!("{base}threads = 0\n")).unwrap();
        assert_eq!(s.mc.threads, 0);
        // Junk values fail loudly with the offending line number
        // (`threads = x` is line 5 of the assembled spec).
        let err = Scenario::parse(&format!("{base}threads = lots\n")).unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
        assert!(err.to_string().contains("threads"), "{err}");
        let err = Scenario::parse(&format!("{base}threads = -2\n")).unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
    }

    #[test]
    fn variance_keys_parse_and_combine() {
        let base = "[campaign]\nname = v\nmodel = mc\n[mc]\n";
        let parse = |mc: &str| Scenario::parse(&format!("{base}{mc}"));

        let s = parse("variance = failure-biasing\n").unwrap();
        assert_eq!(s.mc.variance, McVariance::FailureBiasing { bias: 0.5 });
        // Tuning keys combine regardless of their order relative to
        // `variance`.
        let s = parse("bias = 0.7\nvariance = failure-biasing\n").unwrap();
        assert_eq!(s.mc.variance, McVariance::FailureBiasing { bias: 0.7 });
        let s = parse("variance = splitting\nlevels = 3\neffort = 16\n").unwrap();
        assert_eq!(
            s.mc.variance,
            McVariance::Splitting {
                levels: 3,
                effort: 16
            }
        );
        let s = parse("variance = splitting\n").unwrap();
        assert_eq!(
            s.mc.variance,
            McVariance::Splitting {
                levels: 2,
                effort: 64
            }
        );
        let s = parse("variance = naive\n").unwrap();
        assert_eq!(s.mc.variance, McVariance::Naive);
    }

    #[test]
    fn variance_key_errors_carry_lines_and_reject_mismatched_tuning() {
        let base = "[campaign]\nname = v\nmodel = mc\n[mc]\n";
        let parse = |mc: &str| Scenario::parse(&format!("{base}{mc}"));

        let e = parse("variance = quantum\n").unwrap_err();
        assert!(e.to_string().contains("unknown variance"), "{e}");
        let e = parse("bias = 0.5\n").unwrap_err();
        assert!(e.to_string().contains("requires a `variance`"), "{e}");
        let e = parse("variance = splitting\nbias = 0.5\n").unwrap_err();
        assert!(e.to_string().contains("does not apply"), "{e}");
        let e = parse("variance = failure-biasing\nlevels = 2\n").unwrap_err();
        assert!(e.to_string().contains("does not apply"), "{e}");
        let e = parse("variance = naive\neffort = 8\n").unwrap_err();
        assert!(e.to_string().contains("does not apply"), "{e}");
        // Core-level parameter validation surfaces as a parse error naming
        // the offending tuning key's own line.
        let e = parse("variance = failure-biasing\nbias = 1.5\n").unwrap_err();
        assert!(e.to_string().contains("line 6"), "{e}");
        let e = parse("variance = splitting\neffort = 1\n").unwrap_err();
        assert!(e.to_string().contains("line 6"), "{e}");
        let e = parse("variance = splitting\nlevels = 0\neffort = 8\n").unwrap_err();
        assert!(e.to_string().contains("line 6"), "{e}");
        // Splitting is conventional-only: a failover policy axis rejects.
        let e = Scenario::parse(
            "[campaign]\nname = v\nmodel = mc\n[axes]\npolicy = [failover]\n[mc]\nvariance = splitting\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("conventional policy only"), "{e}");
    }

    #[test]
    fn fleet_section_parses_and_validates() {
        let s = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[axes]\nraid = r5-3\n[fleet]\narrays = 100\n",
        )
        .unwrap();
        let fleet = s.fleet.unwrap();
        assert_eq!(fleet.arrays, 100);
        // The couplings default to the independent limit.
        assert_eq!(fleet.repairmen, None);
        assert_eq!(fleet.coupling(), FleetCoupling::default());

        // No [fleet] section: None.
        let s = Scenario::parse("[campaign]\nname = f\nmodel = mc\n").unwrap();
        assert_eq!(s.fleet, None);

        // Unknown keys in [fleet] are rejected with a line number.
        let e =
            Scenario::parse("[campaign]\nname = f\nmodel = mc\n[fleet]\ndisks = 3\n").unwrap_err();
        assert!(e.to_string().contains("line 5"), "{e}");

        // Fleet requires model = mc.
        let e = Scenario::parse("[campaign]\nname = f\n[fleet]\narrays = 4\n").unwrap_err();
        assert!(e.to_string().contains("requires `model = mc`"), "{e}");

        // Conventional-policy only.
        let e = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[axes]\npolicy = [conventional, failover]\n[fleet]\narrays = 4\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("conventional policy only"), "{e}");

        // Naive sampling only.
        let e = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[mc]\nvariance = splitting\n[fleet]\narrays = 4\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("naive sampling only"), "{e}");

        // Array bounds come from FleetSpec.
        let e = Scenario::parse("[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 99999999\n")
            .unwrap_err();
        assert!(e.to_string().contains("invalid campaign"), "{e}");
    }

    #[test]
    fn fleet_coupling_keys_parse_and_degenerate_values_name_their_line() {
        let s = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 40\nrepairmen = 4\n\
             dependence = high\ndomain_arrays = 10\ndomain_rate = 1e-5\n",
        )
        .unwrap();
        let fleet = s.fleet.unwrap();
        assert_eq!(fleet.repairmen, Some(4));
        assert_eq!(fleet.dependence, DependenceLevel::High);
        let coupling = fleet.coupling();
        assert_eq!(coupling.dependence, DependenceLevel::High);
        let domains = coupling.domains.unwrap();
        assert_eq!(domains.domain_arrays, 10);
        assert_eq!(domains.rate, 1e-5);

        // Degenerate values are line-numbered parse errors, not engine
        // panics: arrays = 0, repairmen = 0, unknown dependence, bad domain.
        let cases = [
            ("arrays = 0", "line 5", "at least one array"),
            ("repairmen = 0", "line 5", "at least one repair crew"),
            ("dependence = severe", "line 5", "unknown dependence"),
            (
                "domain_arrays = 0",
                "line 5",
                "at least one array per shelf",
            ),
            ("domain_rate = 0", "line 5", "must be positive"),
            ("domain_rate = -2e-4", "line 5", "must be positive"),
        ];
        for (bad, line, needle) in cases {
            let e = Scenario::parse(&format!(
                "[campaign]\nname = f\nmodel = mc\n[fleet]\n{bad}\n"
            ))
            .unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains(line) && msg.contains(needle), "{bad}: {msg}");
        }

        // Domain keys must come as a pair, and shelves fit the fleet.
        let e = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\ndomain_rate = 1e-5\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("must be set together"), "{e}");
        let e = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\n\
             domain_arrays = 9\ndomain_rate = 1e-5\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("exceeds the fleet"), "{e}");

        // A [fleet] section that never names `arrays` is rejected too.
        let e = Scenario::parse("[campaign]\nname = f\nmodel = mc\n[fleet]\nrepairmen = 2\n")
            .unwrap_err();
        assert!(e.to_string().contains("at least one array"), "{e}");
    }

    #[test]
    fn failover_keys_parse_and_cross_checks_name_their_line() {
        let s = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 40\n\
             failover_capacity = 4\nfailover_policy = loss\nfailback_rate = 0.01\n",
        )
        .unwrap();
        let fleet = s.fleet.unwrap();
        assert_eq!(fleet.failover_capacity, Some(Some(4)));
        assert_eq!(fleet.failover_policy, FailoverPolicy::Loss);
        assert_eq!(fleet.failback_rate, Some(0.01));
        let failover = fleet.failover(0.25).unwrap();
        assert_eq!(failover.capacity, Some(4));
        assert_eq!(failover.policy, FailoverPolicy::Loss);
        assert_eq!(failover.failback_rate, 0.01);

        // `inf` is the ideal unbounded site; an omitted failback_rate
        // takes the caller's default.
        let s = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\nfailover_capacity = inf\n",
        )
        .unwrap();
        let fleet = s.fleet.unwrap();
        assert_eq!(fleet.failover_capacity, Some(None));
        assert_eq!(fleet.failover_policy, FailoverPolicy::Queue);
        let failover = fleet.failover(0.25).unwrap();
        assert_eq!(failover.capacity, None);
        assert_eq!(failover.failback_rate, 0.25);

        // No failover keys at all: no DR site.
        let s = Scenario::parse("[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\n").unwrap();
        assert_eq!(s.fleet.unwrap().failover(0.25), None);

        // Degenerate values are line-numbered parse errors.
        let cases = [
            ("failover_capacity = 0", "line 5", "at least one failover"),
            ("failover_capacity = 99999999999", "line 5", "is too large"),
            ("failover_capacity = many", "line 5", "unsigned integer"),
            (
                "failover_policy = drop",
                "line 5",
                "unknown failover policy",
            ),
            ("failback_rate = 0", "line 5", "must be positive"),
            ("failback_rate = -0.1", "line 5", "must be positive"),
        ];
        for (bad, line, needle) in cases {
            let e = Scenario::parse(&format!(
                "[campaign]\nname = f\nmodel = mc\n[fleet]\n{bad}\n"
            ))
            .unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains(line) && msg.contains(needle), "{bad}: {msg}");
        }

        // A failover key without `arrays` blames its own line, even with
        // `arrays` appearing nowhere in the section.
        let e =
            Scenario::parse("[campaign]\nname = f\nmodel = mc\n[fleet]\nfailover_capacity = 4\n")
                .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 5") && msg.contains("requires `arrays`"),
            "{msg}"
        );

        // Tuning keys without a `failover_capacity` blame their line, in
        // either key order.
        let e = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\narrays = 8\nfailover_policy = queue\n",
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 6") && msg.contains("requires a `failover_capacity`"),
            "{msg}"
        );
        let e = Scenario::parse(
            "[campaign]\nname = f\nmodel = mc\n[fleet]\nfailback_rate = 0.1\narrays = 8\n",
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 5") && msg.contains("requires a `failover_capacity`"),
            "{msg}"
        );
    }

    #[test]
    fn lse_section_parses_and_gates_on_supporting_models() {
        let s = Scenario::parse(
            "[campaign]\nname = l\nmodel = mc\n[lse]\nlse_rate = 1e-4\nscrub_interval = 336\n",
        )
        .unwrap();
        let lse = s.lse.unwrap();
        assert_eq!(lse.lse_rate, 1e-4);
        assert_eq!(lse.scrub_interval_hours, 336.0);
        assert!(lse.is_live());
        assert_eq!(lse.model(), ScrubbingModel::new(1e-4, 336.0).unwrap());

        // No [lse] section: None.
        let s = Scenario::parse("[campaign]\nname = l\nmodel = mc\n").unwrap();
        assert_eq!(s.lse, None);

        // The generic chain and the Fig. 2 exact chain honour scrubbing;
        // the Fig. 3 chain (and the fail-over policy below) rejects a live
        // rate with the offending line — a zero rate is a bit-identical
        // no-op and passes anywhere.
        for model in ["generic-k-of-n", "markov-conventional"] {
            assert!(Scenario::parse(&format!(
                "[campaign]\nname = l\nmodel = {model}\n[lse]\nlse_rate = 1e-4\nscrub_interval = 336\n"
            ))
            .is_ok());
        }
        let e = Scenario::parse(
            "[campaign]\nname = l\nmodel = markov-failover\n[lse]\nlse_rate = 1e-4\nscrub_interval = 336\n"
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 5") && msg.contains("LSE-aware rebuilds"),
            "{msg}"
        );
        assert!(Scenario::parse(
            "[campaign]\nname = l\nmodel = markov-failover\n[lse]\nlse_rate = 0\nscrub_interval = 336\n"
        )
        .is_ok());
        let e = Scenario::parse(
            "[campaign]\nname = l\nmodel = mc\n[axes]\npolicy = [failover]\n\
             [lse]\nlse_rate = 1e-4\nscrub_interval = 336\n",
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 7") && msg.contains("failover policy"),
            "{msg}"
        );

        // The keys come as a pair, and degenerate values blame their line.
        let cases = [
            ("lse_rate = 1e-4", "line 5", "must be set together"),
            ("scrub_interval = 336", "line 5", "must be set together"),
            (
                "lse_rate = -1\nscrub_interval = 336",
                "line 5",
                "nonnegative",
            ),
            (
                "lse_rate = 1e-4\nscrub_interval = 0",
                "line 6",
                "must be positive",
            ),
            (
                "lse_rate = 1e-4\nscrub_interval = -24",
                "line 6",
                "must be positive",
            ),
            ("exposure = 3", "line 5", "unknown key"),
        ];
        for (bad, line, needle) in cases {
            let e = Scenario::parse(&format!("[campaign]\nname = l\nmodel = mc\n[lse]\n{bad}\n"))
                .unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains(line) && msg.contains(needle), "{bad}: {msg}");
        }
    }

    #[test]
    fn telemetry_section_parses_and_format_requires_metrics() {
        let s = Scenario::parse(
            "[campaign]\nname = t\n[telemetry]\nmetrics = out.prom\nformat = prom\nprogress = true\n",
        )
        .unwrap();
        assert_eq!(s.telemetry.metrics.as_deref(), Some("out.prom"));
        assert_eq!(s.telemetry.format, MetricsFormat::Prometheus);
        assert!(s.telemetry.progress);
        assert!(s.telemetry.enabled());

        // Defaults: everything off, JSON format.
        let s = Scenario::parse("[campaign]\nname = t\n").unwrap();
        assert_eq!(s.telemetry, TelemetrySettings::default());
        assert!(!s.telemetry.enabled());

        // `format` without `metrics` is a line-numbered spec error, even
        // when `format` appears before a (missing) `metrics` key.
        let e = Scenario::parse("[campaign]\nname = t\n[telemetry]\nformat = json\n").unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 4") && msg.contains("requires a `metrics`"),
            "{msg}"
        );

        // Unknown format and non-boolean progress carry their lines.
        let e =
            Scenario::parse("[campaign]\nname = t\n[telemetry]\nmetrics = m.json\nformat = xml\n")
                .unwrap_err();
        assert!(e.to_string().contains("line 5"), "{e}");
        let e =
            Scenario::parse("[campaign]\nname = t\n[telemetry]\nprogress = maybe\n").unwrap_err();
        assert!(e.to_string().contains("line 4"), "{e}");
    }

    #[test]
    fn failover_model_defaults_to_failover_policy() {
        let s = Scenario::parse("[campaign]\nname = f\nmodel = markov-failover\n").unwrap();
        assert_eq!(s.effective_policies(), vec![Policy::Failover]);
    }
}
