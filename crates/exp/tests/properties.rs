//! Property-based tests for the experiment subsystem: grid arithmetic,
//! seed derivation, and runner determinism under random scenarios.

use availsim_exp::plan::{cell_seed, expand};
use availsim_exp::run::{run, RunConfig};
use availsim_exp::spec::Scenario;
use availsim_exp::{report, spec::parse_geometry};
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let lambda = proptest::collection::vec(
        prop_oneof![Just(5e-7), Just(1e-6), Just(5e-6), Just(1e-5), Just(2e-5)],
        1..4,
    );
    let hep = proptest::collection::vec(prop_oneof![Just(0.0), Just(0.001), Just(0.01)], 1..4);
    let raid = proptest::collection::vec(prop_oneof![Just("r1"), Just("r5-3"), Just("r5-7")], 1..4);
    (lambda, hep, raid, any::<u64>()).prop_map(|(lambda, hep, raid, seed)| {
        let mut s = Scenario {
            seed,
            lambda,
            hep,
            ..Scenario::default()
        };
        s.raid = raid
            .into_iter()
            .map(|g| parse_geometry(g).unwrap())
            .collect();
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cell count is always the product of the axis lengths, indices are
    /// consecutive, and seeds match the documented derivation.
    #[test]
    fn grid_expansion_arithmetic(s in arb_scenario()) {
        let plan = expand(&s).unwrap();
        prop_assert_eq!(plan.len(), s.raid.len() * s.lambda.len() * s.hep.len());
        for (i, c) in plan.cells.iter().enumerate() {
            prop_assert_eq!(c.index, i as u64);
            prop_assert_eq!(c.seed, cell_seed(s.seed, i as u64));
        }
    }

    /// Every axis value appears in the grid exactly
    /// `total_cells / axis_len` times.
    #[test]
    fn each_axis_value_is_visited_uniformly(s in arb_scenario()) {
        let plan = expand(&s).unwrap();
        let per_lambda = plan.len() / s.lambda.len();
        for &l in &s.lambda {
            let hits = plan.cells.iter().filter(|c| c.lambda == l).count();
            // A value can legitimately repeat in the axis list; count
            // multiplicity.
            let mult = s.lambda.iter().filter(|&&x| x == l).count();
            prop_assert_eq!(hits, per_lambda * mult);
        }
    }

    /// The full pipeline (expand -> run -> report) is byte-identical
    /// between one worker and many workers.
    #[test]
    fn reports_are_worker_count_invariant(s in arb_scenario()) {
        let plan = expand(&s).unwrap();
        let one = run(&plan, &RunConfig { workers: 1, ..Default::default() }).unwrap();
        let many = run(&plan, &RunConfig { workers: 4, ..Default::default() }).unwrap();
        prop_assert_eq!(report::to_csv(&one), report::to_csv(&many));
        prop_assert_eq!(report::to_json(&one), report::to_json(&many));
    }

    /// Dry-run plan descriptions are byte-stable for a fixed seed.
    #[test]
    fn plan_description_is_stable(s in arb_scenario()) {
        let a = expand(&s).unwrap().describe();
        let b = expand(&s).unwrap().describe();
        prop_assert_eq!(a, b);
    }
}
