//! Acceptance test: the Fig. 6 RAID-comparison campaign reproduces
//! `availsim_core::volume::compare_equal_capacity` exactly (within 1e-12).

use availsim_core::volume::{compare_equal_capacity, FIG6_USABLE_CAPACITY};
use availsim_exp::plan::expand;
use availsim_exp::run::{run, RunConfig};
use availsim_exp::spec::Scenario;
use availsim_hra::Hep;

/// Loads the spec file the repository actually ships.
fn fig6_spec() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/fig6_raid.campaign"
    );
    std::fs::read_to_string(path).expect("examples/specs/fig6_raid.campaign exists")
}

#[test]
fn fig6_campaign_matches_compare_equal_capacity() {
    let scenario = Scenario::parse(&fig6_spec()).unwrap();
    let plan = expand(&scenario).unwrap();
    assert_eq!(plan.len(), 9);
    let result = run(
        &plan,
        &RunConfig {
            workers: 0,
            ..Default::default()
        },
    )
    .unwrap();

    // Canonical cell order: raid (outer) x hep (inner); geometry i at hep j
    // is cell 3*i + j.
    let heps = [0.0, 0.001, 0.01];
    for (j, &h) in heps.iter().enumerate() {
        let reference =
            compare_equal_capacity(FIG6_USABLE_CAPACITY, 1e-5, Hep::new(h).unwrap()).unwrap();
        for (i, row) in reference.iter().enumerate() {
            let cell = &result.cells[3 * i + j];
            assert_eq!(cell.cell.raid.label(), row.label, "geometry order");
            let volume = cell.volume.expect("capacity set -> volume metrics");
            assert_eq!(volume.arrays, row.arrays);
            assert_eq!(volume.total_disks, row.total_disks);
            assert!(
                (cell.unavailability - row.per_array_unavailability).abs() < 1e-12,
                "per-array U mismatch at {} hep={h}: {} vs {}",
                row.label,
                cell.unavailability,
                row.per_array_unavailability
            );
            assert!(
                (volume.unavailability - row.volume_unavailability).abs() < 1e-12,
                "volume U mismatch at {} hep={h}: {} vs {}",
                row.label,
                volume.unavailability,
                row.volume_unavailability
            );
            assert!((volume.nines - row.nines()).abs() < 1e-9);
        }
    }
}

#[test]
fn fig6_campaign_reproduces_the_ranking_inversion() {
    let scenario = Scenario::parse(&fig6_spec()).unwrap();
    let result = run(&expand(&scenario).unwrap(), &RunConfig::default()).unwrap();
    let vol_nines = |i: usize| result.cells[i].volume.unwrap().nines;
    // hep = 0: RAID1 (cell 0) beats RAID5(7+1) (cell 6).
    assert!(vol_nines(0) > vol_nines(6));
    // hep = 0.01: the ranking inverts (cells 2 and 8).
    assert!(vol_nines(8) > vol_nines(2));
}
