//! Golden test for the shipped rare-event campaign: the biased Fig. 6
//! variant must agree with a naive Monte-Carlo run of the same grid — every
//! unavailability column within the two runs' combined confidence
//! intervals — and stay byte-identical across worker counts.

use availsim_core::mc::McVariance;
use availsim_exp::plan::expand;
use availsim_exp::run::{run, RunConfig};
use availsim_exp::spec::Scenario;
use availsim_exp::{report, ExpError};

/// Loads the spec file the repository actually ships.
fn biased_spec() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/fig6_raid_biased.campaign"
    );
    std::fs::read_to_string(path).expect("examples/specs/fig6_raid_biased.campaign exists")
}

#[test]
fn biased_campaign_parses_to_the_rare_event_mode() {
    let s = Scenario::parse(&biased_spec()).unwrap();
    assert_eq!(s.mc.variance, McVariance::FailureBiasing { bias: 0.5 });
    assert_eq!(s.name, "fig6-raid-biased");
    let plan = expand(&s).unwrap();
    assert_eq!(plan.len(), 9);
    let d = plan.describe();
    assert!(d.contains("variance  : failure-biasing(bias=0.5)"), "{d}");
}

#[test]
fn biased_unavailability_columns_agree_with_naive_mc_and_the_exact_chain() {
    use availsim_core::markov::Raid5Conventional;
    use availsim_core::ModelParams;
    use availsim_hra::Hep;

    let biased_scenario = Scenario::parse(&biased_spec()).unwrap();
    let mut naive_scenario = biased_scenario.clone();
    naive_scenario.mc.variance = McVariance::Naive;
    // The naive reference needs a far larger budget before its Student-t
    // interval means anything (a cell with two observed outages has a
    // nominal CI that badly undercovers); 10× is still cheap on the jump
    // chain and makes the comparison statistically honest.
    naive_scenario.mc.iterations = 30_000;

    let biased = run(
        &expand(&biased_scenario).unwrap(),
        &RunConfig {
            workers: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let naive = run(
        &expand(&naive_scenario).unwrap(),
        &RunConfig {
            workers: 0,
            ..Default::default()
        },
    )
    .unwrap();

    for (b, n) in biased.cells.iter().zip(&naive.cells) {
        assert_eq!(b.cell.index, n.cell.index);
        let (bu, nu) = (b.unavailability, n.unavailability);
        // The biased run must resolve every cell (every cell has at least
        // the double-failure outage mode enabled).
        assert!(bu > 0.0, "cell {}: biased estimate is zero", b.cell.index);
        // Exact CTMC oracle per cell: the biased CI must bracket it.
        let params =
            ModelParams::paper_defaults(b.cell.raid, b.cell.lambda, Hep::new(b.cell.hep).unwrap())
                .unwrap();
        let exact = Raid5Conventional::new(params)
            .unwrap()
            .solve()
            .unwrap()
            .unavailability();
        let b_hw = b.ci_half_width.unwrap();
        assert!(
            (bu - exact).abs() <= b_hw,
            "cell {} ({} hep={}): biased U {bu:.4e} misses exact {exact:.4e} \
             (CI ±{b_hw:.4e})",
            b.cell.index,
            b.cell.raid.label(),
            b.cell.hep
        );
        // Where naive MC observed anything at all, the two estimates must
        // agree within their combined intervals. Cells naive cannot
        // resolve (zero events → U = 0, zero-width CI) are exactly why the
        // rare-event mode exists; the oracle above already pins them.
        if nu > 0.0 {
            let tolerance = b_hw + n.ci_half_width.unwrap();
            assert!(
                (bu - nu).abs() <= tolerance,
                "cell {} ({} hep={}): biased U {bu:.4e} vs naive U {nu:.4e} \
                 beyond combined CI {tolerance:.4e}",
                b.cell.index,
                b.cell.raid.label(),
                b.cell.hep
            );
        }
    }
    // The grid genuinely exercises the rare-event regime: at least one
    // cell is invisible to the naive run at this budget.
    assert!(
        naive.cells.iter().any(|c| c.unavailability == 0.0),
        "every cell resolved naively — the campaign no longer tests the \
         rare-event path"
    );
}

#[test]
fn biased_campaign_reports_are_worker_count_invariant() {
    let scenario = Scenario::parse(&biased_spec()).unwrap();
    let plan = expand(&scenario).unwrap();
    let one = run(
        &plan,
        &RunConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let four = run(
        &plan,
        &RunConfig {
            workers: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report::to_csv(&one), report::to_csv(&four));
    assert_eq!(report::to_json(&one), report::to_json(&four));
}

#[test]
fn splitting_under_a_failover_policy_is_rejected_before_any_cell_runs() {
    // An early misconfiguration must not burn the campaign's compute: the
    // plan expansion itself re-validates and rejects the combination.
    let mut s = Scenario::parse(&biased_spec()).unwrap();
    s.mc.variance = McVariance::Splitting {
        levels: 2,
        effort: 8,
    };
    s.policy = vec![availsim_exp::spec::Policy::Failover];
    let err = match expand(&s) {
        Err(e) => e,
        Ok(_) => panic!("failover splitting must not expand"),
    };
    assert!(matches!(err, ExpError::InvalidSpec(_)), "{err}");
    assert!(
        err.to_string().contains("conventional policy only"),
        "{err}"
    );
}
