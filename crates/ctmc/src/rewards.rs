//! Markov reward models: rate rewards on states, impulse rewards on
//! transitions, long-run rates and finite-horizon accumulation.
//!
//! This is the standard dependability-tool layer (SHARPE-style) on top of a
//! CTMC: attach €/h penalties to down states (rate rewards) and per-event
//! costs to transitions (impulse rewards — e.g. a truck roll per disk
//! replacement), then ask for the long-run cost rate or the expected cost
//! of a mission.

use crate::error::{CtmcError, Result};
use crate::state::StateId;
use crate::Ctmc;

/// A reward structure over a chain: per-time-unit rewards on states plus
/// per-occurrence rewards on transitions.
#[derive(Debug, Clone)]
pub struct RewardModel {
    rate_rewards: Vec<f64>,
    /// Impulse rewards, parallel to the chain's adjacency layout.
    impulse: Vec<Vec<(usize, f64)>>,
}

impl RewardModel {
    /// Creates an all-zero reward structure for `chain`.
    pub fn zero(chain: &Ctmc) -> Self {
        RewardModel {
            rate_rewards: vec![0.0; chain.num_states()],
            impulse: chain
                .adjacency()
                .iter()
                .map(|row| row.iter().map(|&(j, _)| (j, 0.0)).collect())
                .collect(),
        }
    }

    /// Sets the per-time-unit reward of a state.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] for an out-of-range state
    /// and [`CtmcError::InvalidRate`] for a non-finite reward.
    pub fn rate_reward(&mut self, state: StateId, reward: f64) -> Result<&mut Self> {
        if state.index() >= self.rate_rewards.len() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.rate_rewards.len(),
                actual: state.index(),
            });
        }
        if !reward.is_finite() {
            return Err(CtmcError::InvalidRate {
                from: format!("state {}", state.index()),
                to: "rate reward".into(),
                rate: reward,
            });
        }
        self.rate_rewards[state.index()] = reward;
        Ok(self)
    }

    /// Sets the per-occurrence reward of the transition `from -> to`.
    ///
    /// # Errors
    /// Returns [`CtmcError::UnknownState`] if the transition does not exist
    /// in the chain and [`CtmcError::InvalidRate`] for non-finite rewards.
    pub fn impulse_reward(&mut self, from: StateId, to: StateId, reward: f64) -> Result<&mut Self> {
        if !reward.is_finite() {
            return Err(CtmcError::InvalidRate {
                from: format!("state {}", from.index()),
                to: format!("state {}", to.index()),
                rate: reward,
            });
        }
        let row = self
            .impulse
            .get_mut(from.index())
            .ok_or(CtmcError::DimensionMismatch {
                expected: self.rate_rewards.len(),
                actual: from.index(),
            })?;
        match row.iter_mut().find(|(j, _)| *j == to.index()) {
            Some((_, r)) => {
                *r = reward;
                Ok(self)
            }
            None => Err(CtmcError::UnknownState(format!(
                "transition s{} -> s{} does not exist",
                from.index(),
                to.index()
            ))),
        }
    }

    /// The rate-reward vector.
    pub fn rate_rewards(&self) -> &[f64] {
        &self.rate_rewards
    }
}

impl Ctmc {
    /// Long-run reward rate: `Σ_i π_i · r_i + Σ_{i→j} π_i · q_{ij} · c_{ij}`
    /// (time-average of rate rewards plus impulse rewards weighted by their
    /// long-run occurrence frequencies).
    ///
    /// # Errors
    /// Propagates steady-state solver errors; the reward model must belong
    /// to a chain with the same number of states.
    pub fn long_run_reward_rate(&self, rewards: &RewardModel) -> Result<f64> {
        if rewards.rate_rewards.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: rewards.rate_rewards.len(),
            });
        }
        let pi = self.steady_state()?;
        let mut total = 0.0;
        for (i, &p) in pi.iter().enumerate() {
            total += p * rewards.rate_rewards[i];
            for (&(j, rate), &(j2, cost)) in self.adjacency()[i].iter().zip(&rewards.impulse[i]) {
                debug_assert_eq!(j, j2, "impulse layout mirrors adjacency");
                total += p * rate * cost;
            }
        }
        Ok(total)
    }

    /// Expected accumulated reward over `[0, t]` starting from `p0`:
    /// rate rewards integrate over the expected occupancy, impulse rewards
    /// accumulate with the expected number of transition firings.
    ///
    /// # Errors
    /// Propagates occupancy-solver errors and dimension mismatches.
    pub fn accumulated_reward(&self, rewards: &RewardModel, p0: &[f64], t: f64) -> Result<f64> {
        if rewards.rate_rewards.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: rewards.rate_rewards.len(),
            });
        }
        let occ = self.cumulative_occupancy(p0, t, 1e-12)?;
        let mut total = 0.0;
        for (i, &time_in_i) in occ.iter().enumerate() {
            total += time_in_i * rewards.rate_rewards[i];
            // Expected firings of i -> j in [0, t] = E[time in i] · q_ij.
            for (&(j, rate), &(j2, cost)) in self.adjacency()[i].iter().zip(&rewards.impulse[i]) {
                debug_assert_eq!(j, j2, "impulse layout mirrors adjacency");
                total += time_in_i * rate * cost;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn pair(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, lambda).unwrap();
        b.transition(down, up, mu).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn long_run_rate_reward_is_weighted_average() {
        let chain = pair(1.0, 3.0);
        let down = chain.find_state("down").unwrap();
        let mut r = RewardModel::zero(&chain);
        r.rate_reward(down, 100.0).unwrap(); // €100/h while down
                                             // π(down) = 1/4 -> 25 €/h.
        let rate = chain.long_run_reward_rate(&r).unwrap();
        assert!((rate - 25.0).abs() < 1e-12);
    }

    #[test]
    fn long_run_impulse_counts_event_frequency() {
        let chain = pair(0.5, 2.0);
        let up = chain.find_state("up").unwrap();
        let down = chain.find_state("down").unwrap();
        let mut r = RewardModel::zero(&chain);
        r.impulse_reward(up, down, 10.0).unwrap(); // €10 per failure
                                                   // Failure frequency = π(up)·λ = (2/2.5)·0.5 = 0.4/h -> €4/h.
        let rate = chain.long_run_reward_rate(&r).unwrap();
        assert!((rate - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accumulated_reward_matches_occupancy_integral() {
        let chain = pair(0.2, 1.0);
        let down = chain.find_state("down").unwrap();
        let mut r = RewardModel::zero(&chain);
        r.rate_reward(down, 1.0).unwrap(); // reward = downtime hours
        let t = 50.0;
        let acc = chain.accumulated_reward(&r, &[1.0, 0.0], t).unwrap();
        let occ = chain.cumulative_occupancy(&[1.0, 0.0], t, 1e-12).unwrap();
        assert!((acc - occ[down.index()]).abs() < 1e-9);
        // Sanity: below the steady-state bound π(down)·t.
        assert!(acc < 0.2 / 1.2 * t);
    }

    #[test]
    fn accumulated_reward_converges_to_long_run_rate() {
        let chain = pair(0.4, 1.6);
        let up = chain.find_state("up").unwrap();
        let down = chain.find_state("down").unwrap();
        let mut r = RewardModel::zero(&chain);
        r.rate_reward(down, 7.0).unwrap();
        r.impulse_reward(down, up, 2.0).unwrap();
        let t = 5_000.0;
        let acc = chain.accumulated_reward(&r, &[1.0, 0.0], t).unwrap();
        let rate = chain.long_run_reward_rate(&r).unwrap();
        assert!(
            (acc / t - rate).abs() / rate < 1e-3,
            "{} vs {rate}",
            acc / t
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let chain = pair(1.0, 1.0);
        let up = chain.find_state("up").unwrap();
        let down = chain.find_state("down").unwrap();
        let mut r = RewardModel::zero(&chain);
        assert!(r.rate_reward(up, f64::NAN).is_err());
        assert!(r.impulse_reward(down, down, 1.0).is_err()); // no self loop edge
        assert!(r.impulse_reward(up, down, f64::INFINITY).is_err());

        // Mismatched model (built for a different chain size).
        let other = pair(1.0, 1.0);
        let mut bigger = CtmcBuilder::new();
        let a = bigger.state("a").unwrap();
        let b2 = bigger.state("b").unwrap();
        let c = bigger.state("c").unwrap();
        bigger.transition(a, b2, 1.0).unwrap();
        bigger.transition(b2, c, 1.0).unwrap();
        bigger.transition(c, a, 1.0).unwrap();
        let big_chain = bigger.build().unwrap();
        let r_small = RewardModel::zero(&other);
        assert!(big_chain.long_run_reward_rate(&r_small).is_err());
        assert!(big_chain
            .accumulated_reward(&r_small, &[1.0, 0.0, 0.0], 1.0)
            .is_err());
    }
}
