//! Embedded (jump) discrete-time Markov chain of a CTMC.

use crate::error::{CtmcError, Result};
use crate::sparse::CsrMatrix;
use crate::state::StateSpace;
use crate::Ctmc;

/// A discrete-time Markov chain over the same labeled states as the CTMC it
/// was derived from.
#[derive(Debug, Clone)]
pub struct Dtmc {
    states: StateSpace,
    p: CsrMatrix,
    /// Exit rate of each CTMC state, kept to convert stationary vectors back.
    exit_rates: Vec<f64>,
}

pub(crate) fn embedded(chain: &Ctmc) -> Result<Dtmc> {
    let n = chain.num_states();
    let mut triplets = Vec::with_capacity(chain.num_transitions());
    for (i, row) in chain.adjacency().iter().enumerate() {
        let exit: f64 = row.iter().map(|&(_, r)| r).sum();
        if exit <= 0.0 {
            return Err(CtmcError::NotIrreducible { state: i });
        }
        for &(j, r) in row {
            triplets.push((i, j, r / exit));
        }
    }
    let p = CsrMatrix::from_triplets(n, n, &triplets)?;
    let exit_rates = (0..n).map(|i| chain.exit_rate(crate::StateId(i))).collect();
    Ok(Dtmc {
        states: chain.states().clone(),
        p,
        exit_rates,
    })
}

impl Dtmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The labeled state space.
    pub fn states(&self) -> &StateSpace {
        &self.states
    }

    /// One-step transition probability matrix (CSR).
    pub fn transition_matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// Propagates a distribution one step: `π ← πP`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] on a wrong-length vector.
    pub fn step(&self, pi: &[f64]) -> Result<Vec<f64>> {
        self.p.vec_mul(pi)
    }

    /// Stationary distribution of the jump chain by damped power iteration.
    ///
    /// A small damping factor guarantees convergence even for periodic jump
    /// chains (the undamped jump chain of a 2-state CTMC alternates forever).
    ///
    /// # Errors
    /// Returns [`CtmcError::NoConvergence`] if the iteration fails to reach
    /// `tolerance` within `max_iterations`.
    pub fn stationary(&self, max_iterations: usize, tolerance: f64) -> Result<Vec<f64>> {
        let n = self.num_states();
        let damping = 0.5;
        let mut pi = vec![1.0 / n as f64; n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iterations {
            let stepped = self.step(&pi)?;
            let next: Vec<f64> = pi
                .iter()
                .zip(&stepped)
                .map(|(a, b)| damping * a + (1.0 - damping) * b)
                .collect();
            residual = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if residual < tolerance {
                let total: f64 = pi.iter().sum();
                for v in &mut pi {
                    *v /= total;
                }
                return Ok(pi);
            }
        }
        Err(CtmcError::NoConvergence {
            iterations: max_iterations,
            residual,
        })
    }

    /// Converts a stationary distribution of the jump chain into the
    /// stationary distribution of the originating CTMC:
    /// `π_ctmc(i) ∝ π_jump(i) / exit_rate(i)`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] on a wrong-length vector.
    pub fn to_ctmc_stationary(&self, pi_jump: &[f64]) -> Result<Vec<f64>> {
        if pi_jump.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: pi_jump.len(),
            });
        }
        let mut pi: Vec<f64> = pi_jump
            .iter()
            .zip(&self.exit_rates)
            .map(|(p, r)| p / r)
            .collect();
        let total: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= total;
        }
        Ok(pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn chain() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("a").unwrap();
        let s1 = b.state("b").unwrap();
        let s2 = b.state("c").unwrap();
        b.transition(s0, s1, 2.0).unwrap();
        b.transition(s1, s0, 1.0).unwrap();
        b.transition(s1, s2, 1.0).unwrap();
        b.transition(s2, s0, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rows_are_stochastic() {
        let d = chain().embedded().unwrap();
        let p = d.transition_matrix();
        for r in 0..d.num_states() {
            let sum: f64 = p.row(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jump_probabilities_are_rate_ratios() {
        let c = chain();
        let d = c.embedded().unwrap();
        let b = c.find_state("b").unwrap();
        let a = c.find_state("a").unwrap();
        // b exits at 2.0 total, half to a.
        let p_ba = d
            .transition_matrix()
            .row(b.index())
            .find(|&(col, _)| col == a.index())
            .map(|(_, v)| v)
            .unwrap();
        assert!((p_ba - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stationary_roundtrip_matches_gth() {
        let c = chain();
        let d = c.embedded().unwrap();
        let pi_jump = d.stationary(200_000, 1e-14).unwrap();
        let pi = d.to_ctmc_stationary(&pi_jump).unwrap();
        let gth = c.steady_state().unwrap();
        for (x, y) in pi.iter().zip(&gth) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn two_state_periodic_jump_chain_converges_with_damping() {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("u").unwrap();
        let s1 = b.state("d").unwrap();
        b.transition(s0, s1, 1.0).unwrap();
        b.transition(s1, s0, 5.0).unwrap();
        let d = b.build().unwrap().embedded().unwrap();
        let pi = d.stationary(100_000, 1e-13).unwrap();
        // Jump chain alternates: stationary = (1/2, 1/2).
        assert!((pi[0] - 0.5).abs() < 1e-6);
        assert!((pi[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn absorbing_state_rejected() {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("u").unwrap();
        let s1 = b.state("trap").unwrap();
        b.transition(s0, s1, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            c.embedded().unwrap_err(),
            CtmcError::NotIrreducible { state: 1 }
        ));
    }
}
