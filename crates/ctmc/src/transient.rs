//! Transient analysis via uniformization (Jensen's method).
//!
//! The distribution at time `t` is
//! `π(t) = Σ_k Poisson(Λt; k) · π(0) Pᵏ` where `P = I + Q/Λ`.
//! Poisson weights are generated outward from the mode by ratio recurrences,
//! which neither underflows nor needs `ln Γ`, and the series is truncated once
//! the discarded tail mass is below the requested tolerance (a Fox–Glynn-style
//! scheme).

use crate::error::Result;
use crate::{validate_distribution, Ctmc};

/// Poisson(mean) probabilities for `k` in `[left, left+weights.len())`,
/// normalized to sum to one over the retained window.
#[derive(Debug, Clone)]
pub(crate) struct PoissonWindow {
    pub left: usize,
    pub weights: Vec<f64>,
}

pub(crate) fn poisson_window(mean: f64, tol: f64) -> PoissonWindow {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "invalid poisson mean {mean}"
    );
    if mean == 0.0 {
        return PoissonWindow {
            left: 0,
            weights: vec![1.0],
        };
    }
    let mode = mean.floor() as usize;
    // Unnormalized weights relative to the mode (w[mode] = 1).
    // Expand right: w(k+1) = w(k) * mean/(k+1); left: w(k-1) = w(k) * k/mean.
    let cutoff = tol * 1e-4; // relative cutoff per side; tail mass << tol
    let mut right_weights = vec![1.0f64];
    let mut k = mode;
    let mut w = 1.0;
    loop {
        w *= mean / (k + 1) as f64;
        if w < cutoff || !w.is_normal() {
            break;
        }
        right_weights.push(w);
        k += 1;
        // Hard cap: the window for Poisson(m) is O(m + sqrt(m)); 10·m + 100 is
        // far beyond any mass we could retain.
        if k > (10.0 * mean) as usize + 100 {
            break;
        }
    }
    let mut left_weights = Vec::new();
    let mut kk = mode;
    let mut wl = 1.0;
    while kk > 0 {
        wl *= kk as f64 / mean;
        if wl < cutoff || !wl.is_normal() {
            break;
        }
        left_weights.push(wl);
        kk -= 1;
    }
    let left = mode - left_weights.len();
    let mut weights: Vec<f64> = left_weights.iter().rev().copied().collect();
    weights.extend(right_weights);
    let total: f64 = weights.iter().sum();
    for v in &mut weights {
        *v /= total;
    }
    PoissonWindow { left, weights }
}

pub(crate) fn transient(chain: &Ctmc, p0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>> {
    let n = chain.num_states();
    validate_distribution(p0, n)?;
    if t <= 0.0 {
        return Ok(p0.to_vec());
    }
    let (p, lambda) = chain.uniformized();
    let window = poisson_window(lambda * t, tol.max(1e-15));

    let mut v = p0.to_vec();
    let mut out = vec![0.0; n];
    // Propagate to the left edge of the window without accumulating.
    for _ in 0..window.left {
        v = p.vec_mul(&v)?;
    }
    for (i, &w) in window.weights.iter().enumerate() {
        for (o, &vi) in out.iter_mut().zip(&v) {
            *o += w * vi;
        }
        if i + 1 < window.weights.len() {
            v = p.vec_mul(&v)?;
        }
    }
    Ok(out)
}

pub(crate) fn cumulative_occupancy(chain: &Ctmc, p0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>> {
    let n = chain.num_states();
    validate_distribution(p0, n)?;
    let mut occ = vec![0.0; n];
    if t <= 0.0 {
        return Ok(occ);
    }
    let (p, lambda) = chain.uniformized();
    let qt = lambda * t;
    // ∫₀ᵗ π(s) ds = Σ_k (v_k / Λ) · P(N > k), with N ~ Poisson(Λt):
    // the expected time the uniformized chain spends in its k-th step within
    // [0, t] is survival(k)/Λ.
    //
    // Survival values are computed from an *extended* Poisson window so the
    // cumulative sum is accurate: we build the window with a tolerance well
    // below `tol`.
    let window = poisson_window(qt, tol.max(1e-15) * 1e-2);
    // survival[k] = P(N > k) for k >= 0. For k < window.left, survival ≈ 1.
    let mut v = p0.to_vec();
    let mut cum = 0.0f64;
    let mut k = 0usize;
    let right = window.left + window.weights.len();
    while k < right {
        let weight_k = if k >= window.left {
            window.weights[k - window.left]
        } else {
            0.0
        };
        cum += weight_k;
        let survival = (1.0 - cum).max(0.0);
        if survival <= 0.0 && k >= window.left {
            break;
        }
        for (o, &vi) in occ.iter_mut().zip(&v) {
            *o += survival / lambda * vi;
        }
        v = p.vec_mul(&v)?;
        k += 1;
    }
    Ok(occ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, lambda).unwrap();
        b.transition(down, up, mu).unwrap();
        b.build().unwrap()
    }

    /// Closed form for the two-state chain:
    /// p_up(t) = μ/(λ+μ) + (p_up(0) − μ/(λ+μ))·e^{−(λ+μ)t}
    fn analytic_up(lambda: f64, mu: f64, p0_up: f64, t: f64) -> f64 {
        let s = lambda + mu;
        mu / s + (p0_up - mu / s) * (-s * t).exp()
    }

    #[test]
    fn poisson_window_mass_and_mean() {
        for &mean in &[0.1, 1.0, 7.3, 150.0, 12_345.0] {
            let w = poisson_window(mean, 1e-12);
            let total: f64 = w.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "mass at mean {mean}");
            let avg: f64 = w
                .weights
                .iter()
                .enumerate()
                .map(|(i, &p)| (w.left + i) as f64 * p)
                .sum();
            assert!(
                (avg - mean).abs() / mean.max(1.0) < 1e-6,
                "mean {mean} got {avg}"
            );
        }
    }

    #[test]
    fn poisson_window_zero_mean() {
        let w = poisson_window(0.0, 1e-12);
        assert_eq!(w.left, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn transient_matches_closed_form() {
        let (lambda, mu) = (0.3, 1.7);
        let chain = two_state(lambda, mu);
        for &t in &[0.0, 0.01, 0.5, 2.0, 10.0, 100.0] {
            let p = chain.transient(&[1.0, 0.0], t, 1e-12).unwrap();
            let expect = analytic_up(lambda, mu, 1.0, t);
            assert!(
                (p[0] - expect).abs() < 1e-9,
                "t={t}: got {} expected {expect}",
                p[0]
            );
            assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let chain = two_state(0.2, 0.8);
        let pi = chain.steady_state().unwrap();
        let p = chain.transient(&[0.0, 1.0], 1e3, 1e-12).unwrap();
        for (a, b) in p.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_rejects_bad_distribution() {
        let chain = two_state(1.0, 1.0);
        assert!(chain.transient(&[0.7, 0.7], 1.0, 1e-10).is_err());
        assert!(chain.transient(&[1.0], 1.0, 1e-10).is_err());
    }

    #[test]
    fn occupancy_sums_to_elapsed_time() {
        let chain = two_state(0.4, 1.1);
        for &t in &[0.1, 1.0, 25.0] {
            let occ = chain.cumulative_occupancy(&[1.0, 0.0], t, 1e-12).unwrap();
            let total: f64 = occ.iter().sum();
            assert!(
                (total - t).abs() < 1e-6 * t.max(1.0),
                "t={t}, total={total}"
            );
        }
    }

    #[test]
    fn occupancy_matches_integral_of_closed_form() {
        let (lambda, mu) = (0.5, 2.0);
        let chain = two_state(lambda, mu);
        let t = 4.0;
        let occ = chain.cumulative_occupancy(&[1.0, 0.0], t, 1e-13).unwrap();
        // ∫ p_up = μ/(λ+μ)·t + (1 − μ/(λ+μ))·(1 − e^{−(λ+μ)t})/(λ+μ)
        let s = lambda + mu;
        let expect = mu / s * t + (1.0 - mu / s) * (1.0 - (-s * t).exp()) / s;
        assert!(
            (occ[0] - expect).abs() < 1e-7,
            "got {} expected {expect}",
            occ[0]
        );
    }

    #[test]
    fn interval_availability_approaches_steady_state() {
        let chain = two_state(0.01, 1.0);
        let t = 1e5;
        let occ = chain.cumulative_occupancy(&[1.0, 0.0], t, 1e-12).unwrap();
        let ia = occ[0] / t;
        let pi = chain.steady_state().unwrap();
        assert!((ia - pi[0]).abs() < 1e-6);
    }
}
