//! LU factorization with partial pivoting.
//!
//! Used for general linear solves (mean time to absorption, expected
//! accumulated rewards). Steady-state vectors are computed by the
//! cancellation-free GTH elimination in [`crate::gth`] instead, because LU can
//! lose relative accuracy on probabilities many orders of magnitude below one.

use crate::dense::DenseMatrix;
use crate::error::{CtmcError, Result};

/// An LU factorization `P * A = L * U` of a square matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined storage: strictly-lower part holds L (unit diagonal implied),
    /// upper triangle holds U.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row moved to position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, used for determinants.
    sign: f64,
}

impl LuFactors {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] for non-square input and
    /// [`CtmcError::SingularSystem`] when a pivot underflows to zero.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(CtmcError::DimensionMismatch {
                expected: a.rows(),
                actual: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(CtmcError::SingularSystem);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let upd = factor * lu[(k, j)];
                        lu[(i, j)] -= upd;
                    }
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `x A = b` (equivalently `Aᵀ xᵀ = bᵀ`) by solving with the
    /// transposed factors.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(CtmcError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Solve Uᵀ y = b (forward substitution, U upper → Uᵀ lower).
        let mut y = b.to_vec();
        for i in 0..n {
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(j, i)] * yj;
            }
            y[i] = acc / self.lu[(i, i)];
        }
        // Solve Lᵀ z = y (back substitution, unit diagonal).
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &yj) in y.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(j, i)] * yj;
            }
            y[i] = acc;
        }
        // Undo the permutation: x[perm[i]] = z[i].
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// An estimate of how close the matrix is to singular: the ratio of the
    /// smallest to largest pivot magnitude (1 = perfectly conditioned,
    /// 0 = singular).
    pub fn pivot_ratio(&self) -> f64 {
        let n = self.lu.rows();
        if n == 0 {
            return 1.0;
        }
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for i in 0..n {
            let p = self.lu[(i, i)].abs();
            min = min.min(p);
            max = max.max(p);
        }
        if max == 0.0 {
            0.0
        } else {
            min / max
        }
    }
}

/// One-shot convenience: solves `A x = b`.
///
/// # Errors
/// Propagates factorization and dimension errors from [`LuFactors`].
pub fn solve(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactors::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).unwrap();
        ax.iter()
            .zip(b)
            .fold(0.0f64, |m, (p, q)| m.max((p - q).abs()))
    }

    #[test]
    fn solves_small_system() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(LuFactors::new(&a).unwrap_err(), CtmcError::SingularSystem);
    }

    #[test]
    fn determinant_of_permutation_and_scale() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let f = LuFactors::new(&a).unwrap();
        assert!((f.determinant() - -6.0).abs() < 1e-12);
    }

    #[test]
    fn transposed_solve_matches_direct_transpose() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![2.0, 5.0, 1.0],
            vec![0.5, 1.0, 3.0],
        ])
        .unwrap();
        let b = [1.0, 2.0, 3.0];
        let f = LuFactors::new(&a).unwrap();
        let x = f.solve_transposed(&b).unwrap();
        // x A = b  <=>  Aᵀ x = b
        let xt = solve(&a.transpose(), &b).unwrap();
        for (p, q) in x.iter().zip(&xt) {
            assert!((p - q).abs() < 1e-12, "{p} vs {q}");
        }
        assert!(residual(&a.transpose(), &x, &b) < 1e-12);
    }

    #[test]
    fn badly_scaled_system_still_solves() {
        // Rates spanning many orders of magnitude, as in availability chains.
        // (Not a generator matrix: rows deliberately do not sum to zero,
        // otherwise the system would be singular.)
        let a = DenseMatrix::from_rows(&[
            vec![-1e-6, 1e-6, 1e-7],
            vec![0.1, -0.1003, 3e-4],
            vec![0.03, 0.0, -0.031],
        ])
        .unwrap();
        // Solve A x = b for an arbitrary b; check the relative residual.
        let b = [1.0, 0.5, 0.25];
        let x = solve(&a, &b).unwrap();
        let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs())) * a.max_abs();
        assert!(residual(&a, &x, &b) / scale < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(LuFactors::new(&a).is_err());
    }
}
