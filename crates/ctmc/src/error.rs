//! Error types for the CTMC engine.

use std::error::Error;
use std::fmt;

/// Errors produced while building or analyzing a continuous-time Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A transition rate was negative, NaN, or infinite.
    InvalidRate {
        /// Label of the source state.
        from: String,
        /// Label of the destination state.
        to: String,
        /// The offending rate.
        rate: f64,
    },
    /// A state label was used twice when declaring states.
    DuplicateState(String),
    /// A transition referenced a state that was never declared.
    UnknownState(String),
    /// The chain has no states.
    EmptyChain,
    /// The chain is not irreducible (or the requested analysis needs a
    /// recurrent class that could not be reached), so the steady-state
    /// distribution is not unique.
    NotIrreducible {
        /// Index of a state detected as unreachable from the rest of the
        /// chain during elimination.
        state: usize,
    },
    /// A linear system was singular to working precision.
    SingularSystem,
    /// An iterative method failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// An initial distribution was invalid (negative entries, wrong length,
    /// or it does not sum to one).
    InvalidDistribution(String),
    /// The requested set of absorbing states is invalid (empty, out of
    /// bounds, or covering the entire chain).
    InvalidAbsorbingSet(String),
    /// A dimension mismatch between a vector/matrix and the chain.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            CtmcError::DuplicateState(label) => {
                write!(f, "state `{label}` declared more than once")
            }
            CtmcError::UnknownState(label) => {
                write!(f, "transition references undeclared state `{label}`")
            }
            CtmcError::EmptyChain => write!(f, "chain has no states"),
            CtmcError::NotIrreducible { state } => {
                write!(
                    f,
                    "chain is not irreducible (state index {state} isolated during elimination)"
                )
            }
            CtmcError::SingularSystem => {
                write!(f, "linear system is singular to working precision")
            }
            CtmcError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:e})"
                )
            }
            CtmcError::InvalidDistribution(msg) => {
                write!(f, "invalid probability distribution: {msg}")
            }
            CtmcError::InvalidAbsorbingSet(msg) => {
                write!(f, "invalid absorbing set: {msg}")
            }
            CtmcError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CtmcError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CtmcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CtmcError::InvalidRate {
            from: "OP".into(),
            to: "EXP".into(),
            rate: -1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("OP -> EXP"));
        assert!(msg.starts_with("invalid rate"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtmcError>();
    }

    #[test]
    fn dimension_mismatch_reports_both_sizes() {
        let e = CtmcError::DimensionMismatch {
            expected: 4,
            actual: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 2");
    }
}
