//! Grassmann–Taksar–Heyman (GTH) steady-state solver.
//!
//! GTH is a state-elimination algorithm that computes the stationary vector of
//! an irreducible Markov chain using only additions, multiplications, and
//! divisions of nonnegative quantities — no subtractions — so it suffers no
//! catastrophic cancellation. For availability chains whose stationary
//! probabilities span 10+ orders of magnitude (π(DL) ≈ 1e-12 next to
//! π(OP) ≈ 1), GTH delivers componentwise relative accuracy where a direct LU
//! solve of `πQ = 0` can lose the small components entirely.
//!
//! Reference: W. Grassmann, M. Taksar, D. Heyman, "Regenerative analysis and
//! steady state distributions for Markov chains", Operations Research 33(5),
//! 1985.

use crate::error::{CtmcError, Result};
use crate::Ctmc;

/// Computes the stationary distribution of an irreducible CTMC by GTH
/// elimination on the transition-rate matrix.
///
/// # Errors
/// Returns [`CtmcError::NotIrreducible`] if elimination discovers a state with
/// no remaining outgoing rate (the chain is reducible or has an absorbing
/// state).
pub fn steady_state_gth(chain: &Ctmc) -> Result<Vec<f64>> {
    let n = chain.num_states();
    // Dense copy of off-diagonal rates: a[i][j] = rate(i -> j).
    let mut a = vec![vec![0.0f64; n]; n];
    for (from, to, rate) in chain.transitions() {
        a[from.index()][to.index()] += rate;
    }
    steady_state_gth_rates(&mut a)
}

/// GTH elimination over a dense rate matrix (off-diagonal entries only; the
/// diagonal is ignored). The matrix is consumed as scratch space.
///
/// # Errors
/// Returns [`CtmcError::NotIrreducible`] when a pivot row has zero total rate
/// to the not-yet-eliminated states.
pub fn steady_state_gth_rates(a: &mut [Vec<f64>]) -> Result<Vec<f64>> {
    let n = a.len();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }

    // Elimination sweep: fold state k into states 0..k.
    for k in (1..n).rev() {
        let s: f64 = a[k][..k].iter().sum();
        if s <= 0.0 {
            return Err(CtmcError::NotIrreducible { state: k });
        }
        let (head, tail) = a.split_at_mut(k);
        let row_k = &tail[0];
        for (i, row_i) in head.iter_mut().enumerate() {
            let f = row_i[k] / s;
            if f > 0.0 {
                for (j, (aij, &akj)) in row_i.iter_mut().zip(row_k).enumerate().take(k) {
                    if j != i {
                        *aij += f * akj;
                    }
                }
            }
        }
    }

    // Back-substitution: unnormalized stationary weights.
    let mut pi = vec![0.0f64; n];
    pi[0] = 1.0;
    for k in 1..n {
        let s: f64 = a[k][..k].iter().sum();
        // `s > 0` was verified during elimination.
        let mut num = 0.0;
        for i in 0..k {
            num += pi[i] * a[i][k];
        }
        pi[k] = num / s;
    }

    let total: f64 = pi.iter().sum();
    if !(total.is_finite()) || total <= 0.0 {
        return Err(CtmcError::SingularSystem);
    }
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    #[test]
    fn two_state_birth_death() {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, 2.0).unwrap();
        b.transition(down, up, 3.0).unwrap();
        let chain = b.build().unwrap();
        let pi = steady_state_gth(&chain).unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-15);
        assert!((pi[1] - 0.4).abs() < 1e-15);
    }

    #[test]
    fn single_state_is_certain() {
        let mut b = CtmcBuilder::new();
        b.state("only").unwrap();
        let chain = b.build().unwrap();
        assert_eq!(steady_state_gth(&chain).unwrap(), vec![1.0]);
    }

    #[test]
    fn absorbing_state_detected_as_reducible() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let trap = b.state("trap").unwrap();
        b.transition(a, trap, 1.0).unwrap();
        let chain = b.build().unwrap();
        assert!(matches!(
            steady_state_gth(&chain).unwrap_err(),
            CtmcError::NotIrreducible { .. }
        ));
    }

    #[test]
    fn three_state_cycle_matches_flow_balance() {
        // a -> b -> c -> a with distinct rates; stationary probability is
        // inversely proportional to the exit rate.
        let mut b = CtmcBuilder::new();
        let s0 = b.state("a").unwrap();
        let s1 = b.state("b").unwrap();
        let s2 = b.state("c").unwrap();
        b.transition(s0, s1, 1.0).unwrap();
        b.transition(s1, s2, 2.0).unwrap();
        b.transition(s2, s0, 4.0).unwrap();
        let chain = b.build().unwrap();
        let pi = steady_state_gth(&chain).unwrap();
        // weights ∝ (1/1, 1/2, 1/4) -> (4/7, 2/7, 1/7)
        assert!((pi[0] - 4.0 / 7.0).abs() < 1e-14);
        assert!((pi[1] - 2.0 / 7.0).abs() < 1e-14);
        assert!((pi[2] - 1.0 / 7.0).abs() < 1e-14);
    }

    #[test]
    fn extreme_rate_separation_keeps_relative_accuracy() {
        // up -> down at 1e-12, down -> up at 1.0: pi(down) = 1e-12/(1+1e-12).
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, 1e-12).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let chain = b.build().unwrap();
        let pi = steady_state_gth(&chain).unwrap();
        let expected = 1e-12 / (1.0 + 1e-12);
        let rel = (pi[1] - expected).abs() / expected;
        assert!(rel < 1e-12, "relative error {rel}");
    }
}
