//! Fluent construction of continuous-time Markov chains.

use crate::error::{CtmcError, Result};
use crate::state::{StateId, StateSpace};
use crate::Ctmc;

/// Builder for [`Ctmc`] values.
///
/// # Examples
///
/// ```
/// use availsim_ctmc::CtmcBuilder;
///
/// # fn main() -> Result<(), availsim_ctmc::CtmcError> {
/// let mut b = CtmcBuilder::new();
/// let up = b.state("up")?;
/// let down = b.state("down")?;
/// b.transition(up, down, 1e-3)?;
/// b.transition(down, up, 0.1)?;
/// let chain = b.build()?;
/// let pi = chain.steady_state()?;
/// assert!((pi[up.index()] - 0.1 / 0.101).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CtmcBuilder {
    states: StateSpace,
    transitions: Vec<(StateId, StateId, f64)>,
}

impl CtmcBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new state.
    ///
    /// # Errors
    /// Returns [`CtmcError::DuplicateState`] if the label was already used.
    pub fn state(&mut self, label: impl Into<String>) -> Result<StateId> {
        self.states.add(label)
    }

    /// Adds a transition with the given rate (per unit time).
    ///
    /// Zero-rate transitions are accepted and silently dropped, which lets
    /// model generators pass `hep = 0` without special-casing. Self-loops are
    /// rejected: they have no meaning in a CTMC (the paper's diagrams draw
    /// "failed retry" self-loops, which simply reduce the effective exit rate;
    /// encode them by scaling the competing rates instead).
    ///
    /// # Errors
    /// Returns [`CtmcError::InvalidRate`] if `rate` is negative or not finite,
    /// or if `from == to`.
    pub fn transition(&mut self, from: StateId, to: StateId, rate: f64) -> Result<&mut Self> {
        if !rate.is_finite() || rate < 0.0 || from == to {
            return Err(CtmcError::InvalidRate {
                from: self.states.label(from).to_string(),
                to: self.states.label(to).to_string(),
                rate,
            });
        }
        if rate > 0.0 {
            self.transitions.push((from, to, rate));
        }
        Ok(self)
    }

    /// Number of states declared so far.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Finalizes the chain.
    ///
    /// # Errors
    /// Returns [`CtmcError::EmptyChain`] if no states were declared.
    pub fn build(self) -> Result<Ctmc> {
        if self.states.is_empty() {
            return Err(CtmcError::EmptyChain);
        }
        let n = self.states.len();
        let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (from, to, rate) in self.transitions {
            // Merge parallel edges so exit rates stay exact.
            let row = &mut adjacency[from.0];
            match row.iter_mut().find(|(c, _)| *c == to.0) {
                Some((_, r)) => *r += rate,
                None => row.push((to.0, rate)),
            }
        }
        for row in &mut adjacency {
            row.sort_by_key(|&(c, _)| c);
        }
        Ok(Ctmc::from_parts(self.states, adjacency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_and_non_finite_rates() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let c = b.state("b").unwrap();
        assert!(b.transition(a, c, -1.0).is_err());
        assert!(b.transition(a, c, f64::NAN).is_err());
        assert!(b.transition(a, c, f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_self_loops() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        assert!(b.transition(a, a, 1.0).is_err());
    }

    #[test]
    fn zero_rates_are_dropped() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let c = b.state("b").unwrap();
        b.transition(a, c, 0.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(chain.num_transitions(), 1);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let c = b.state("b").unwrap();
        b.transition(a, c, 1.0).unwrap();
        b.transition(a, c, 2.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(chain.num_transitions(), 2);
        assert!((chain.exit_rate(a) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(
            CtmcBuilder::new().build().unwrap_err(),
            CtmcError::EmptyChain
        );
    }
}
