//! Small dense row-major matrix used by the direct solvers.
//!
//! The chains produced by availability models have at most a few hundred
//! states, so a dense representation is both simpler and faster than a sparse
//! one for factorization-based analyses.

use crate::error::{CtmcError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix shape overflow");
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(CtmcError::DimensionMismatch {
                    expected: c,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Computes `y = self * x`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Computes the row vector product `y = x * self`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (yj, a) in y.iter_mut().zip(row) {
                *yj += xi * a;
            }
        }
        Ok(y)
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] on inner-dimension mismatch.
    pub fn mul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry; zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Infinity norm of `a - b` interpreted entry-wise.
    ///
    /// # Panics
    /// Panics if shapes differ (programmer error in tests/diagnostics).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = DenseMatrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert_eq!(
            err,
            CtmcError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = m.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn vec_mul_is_left_multiplication() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = m.vec_mul(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matrix_product_against_identity() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
        assert!(a.mul_vec(&[0.0; 2]).is_err());
        assert!(a.vec_mul(&[0.0; 3]).is_err());
    }

    #[test]
    fn max_abs_handles_negatives() {
        let m = DenseMatrix::from_rows(&[vec![-5.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
    }
}
