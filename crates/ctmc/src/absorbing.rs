//! Absorbing-chain analysis: mean time to absorption and absorption
//! probabilities.
//!
//! In storage-reliability terms, making the data-loss state absorbing turns
//! the availability chain into a lifetime model whose mean time to absorption
//! is the MTTDL (mean time to data loss) — the quantity that Markov-model
//! critiques such as Greenan et al., "Mean time to meaningless" (HotStorage
//! 2010), discuss.

use crate::dense::DenseMatrix;
use crate::error::{CtmcError, Result};
use crate::lu::LuFactors;
use crate::state::StateId;
use crate::{validate_distribution, Ctmc};

/// Result of an absorbing-chain analysis.
#[derive(Debug, Clone)]
pub struct AbsorptionAnalysis {
    /// Expected time until one of the absorbing states is entered.
    pub mean_time: f64,
    /// Expected total time spent in each state before absorption, indexed by
    /// [`StateId::index`]; absorbing states have zero sojourn.
    pub expected_sojourn: Vec<f64>,
    /// Probability of being absorbed in each requested absorbing state,
    /// in the order the absorbing states were passed.
    pub absorption_probabilities: Vec<f64>,
}

pub(crate) fn absorption(
    chain: &Ctmc,
    initial: &[f64],
    absorbing: &[StateId],
) -> Result<AbsorptionAnalysis> {
    let n = chain.num_states();
    validate_distribution(initial, n)?;
    if absorbing.is_empty() {
        return Err(CtmcError::InvalidAbsorbingSet(
            "no absorbing states given".into(),
        ));
    }
    let mut is_absorbing = vec![false; n];
    for s in absorbing {
        if s.index() >= n {
            return Err(CtmcError::InvalidAbsorbingSet(format!(
                "state index {} out of range",
                s.index()
            )));
        }
        is_absorbing[s.index()] = true;
    }
    let transient: Vec<usize> = (0..n).filter(|&i| !is_absorbing[i]).collect();
    if transient.is_empty() {
        return Err(CtmcError::InvalidAbsorbingSet(
            "every state is absorbing".into(),
        ));
    }
    let pos: Vec<Option<usize>> = {
        let mut p = vec![None; n];
        for (k, &i) in transient.iter().enumerate() {
            p[i] = Some(k);
        }
        p
    };

    // Build B = Q restricted to transient states. Note the diagonal uses the
    // *full* exit rate (including transitions into absorbing states).
    let m = transient.len();
    let mut b = DenseMatrix::zeros(m, m);
    for (k, &i) in transient.iter().enumerate() {
        b[(k, k)] = -chain.exit_rate(StateId(i));
        for &(j, r) in &chain.adjacency()[i] {
            if let Some(kj) = pos[j] {
                b[(k, kj)] += r;
            }
        }
    }

    // Expected sojourn τ solves τᵀ B = -α_Tᵀ  (τ = -B⁻ᵀ α_T).
    let alpha: Vec<f64> = transient.iter().map(|&i| -initial[i]).collect();
    let factors = LuFactors::new(&b)?;
    let tau = factors.solve_transposed(&alpha)?;
    if tau.iter().any(|v| !v.is_finite() || *v < -1e-9) {
        return Err(CtmcError::SingularSystem);
    }

    let mut expected_sojourn = vec![0.0; n];
    for (k, &i) in transient.iter().enumerate() {
        expected_sojourn[i] = tau[k].max(0.0);
    }
    let mean_time: f64 = expected_sojourn.iter().sum();

    // Absorption probabilities: mass already on an absorbing state at t=0
    // counts as instant absorption there.
    let absorption_probabilities: Vec<f64> = absorbing
        .iter()
        .map(|a| {
            let mut p = initial[a.index()];
            for (k, &i) in transient.iter().enumerate() {
                let rate = chain.rate(StateId(i), *a);
                if rate > 0.0 {
                    p += tau[k] * rate;
                }
            }
            p
        })
        .collect();

    Ok(AbsorptionAnalysis {
        mean_time,
        expected_sojourn,
        absorption_probabilities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    #[test]
    fn single_transient_state_mtta_is_inverse_rate() {
        let mut b = CtmcBuilder::new();
        let s = b.state("alive").unwrap();
        let dead = b.state("dead").unwrap();
        b.transition(s, dead, 0.2).unwrap();
        let chain = b.build().unwrap();
        let mut p0 = vec![0.0; 2];
        p0[s.index()] = 1.0;
        let a = chain.absorption(&p0, &[dead]).unwrap();
        assert!((a.mean_time - 5.0).abs() < 1e-12);
        assert!((a.absorption_probabilities[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_of_stages_adds_means() {
        // a -> b -> dead: MTTA = 1/ra + 1/rb.
        let mut bld = CtmcBuilder::new();
        let a = bld.state("a").unwrap();
        let b = bld.state("b").unwrap();
        let dead = bld.state("dead").unwrap();
        bld.transition(a, b, 0.5).unwrap();
        bld.transition(b, dead, 0.25).unwrap();
        let chain = bld.build().unwrap();
        let res = chain.absorption(&[1.0, 0.0, 0.0], &[dead]).unwrap();
        assert!((res.mean_time - 6.0).abs() < 1e-12);
        assert!((res.expected_sojourn[0] - 2.0).abs() < 1e-12);
        assert!((res.expected_sojourn[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn competing_absorbing_states_split_probability() {
        let mut bld = CtmcBuilder::new();
        let s = bld.state("s").unwrap();
        let win = bld.state("win").unwrap();
        let lose = bld.state("lose").unwrap();
        bld.transition(s, win, 3.0).unwrap();
        bld.transition(s, lose, 1.0).unwrap();
        let chain = bld.build().unwrap();
        let res = chain.absorption(&[1.0, 0.0, 0.0], &[win, lose]).unwrap();
        assert!((res.absorption_probabilities[0] - 0.75).abs() < 1e-12);
        assert!((res.absorption_probabilities[1] - 0.25).abs() < 1e-12);
        assert!((res.mean_time - 0.25).abs() < 1e-12);
        let p_sum: f64 = res.absorption_probabilities.iter().sum();
        assert!((p_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repairable_system_mttdl() {
        // OP -> EXP (nλ), EXP -> OP (μ), EXP -> DL (n-1)λ absorbing.
        // Standard RAID5 MTTDL ≈ μ/(nλ·(n−1)λ) for μ >> λ; use exact formula:
        // MTTDL = (μ + nλ + (n−1)λ) / (nλ·(n−1)λ)  [classic 2-state result]
        let (n, lam, mu) = (4.0, 1e-4, 0.1);
        let mut bld = CtmcBuilder::new();
        let op = bld.state("op").unwrap();
        let exp = bld.state("exp").unwrap();
        let dl = bld.state("dl").unwrap();
        bld.transition(op, exp, n * lam).unwrap();
        bld.transition(exp, op, mu).unwrap();
        bld.transition(exp, dl, (n - 1.0) * lam).unwrap();
        let chain = bld.build().unwrap();
        let res = chain.absorption(&[1.0, 0.0, 0.0], &[dl]).unwrap();
        let expect = (mu + n * lam + (n - 1.0) * lam) / (n * lam * (n - 1.0) * lam);
        let rel = (res.mean_time - expect).abs() / expect;
        assert!(rel < 1e-10, "mean {} expected {expect}", res.mean_time);
    }

    #[test]
    fn initial_mass_on_absorbing_state_counts() {
        let mut bld = CtmcBuilder::new();
        let s = bld.state("s").unwrap();
        let dead = bld.state("dead").unwrap();
        bld.transition(s, dead, 1.0).unwrap();
        let chain = bld.build().unwrap();
        let res = chain.absorption(&[0.5, 0.5], &[dead]).unwrap();
        assert!((res.mean_time - 0.5).abs() < 1e-12);
        assert!((res.absorption_probabilities[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_sets_rejected() {
        let mut bld = CtmcBuilder::new();
        let s = bld.state("s").unwrap();
        let dead = bld.state("dead").unwrap();
        bld.transition(s, dead, 1.0).unwrap();
        let chain = bld.build().unwrap();
        assert!(chain.absorption(&[1.0, 0.0], &[]).is_err());
        assert!(chain.absorption(&[1.0, 0.0], &[s, dead]).is_err());
    }

    #[test]
    fn unreachable_absorption_is_singular() {
        // Two transient states that only talk to each other, plus an
        // unreachable absorbing state: B is nonsingular only if absorption is
        // certain, so this must error.
        let mut bld = CtmcBuilder::new();
        let a = bld.state("a").unwrap();
        let b = bld.state("b").unwrap();
        let dead = bld.state("dead").unwrap();
        bld.transition(a, b, 1.0).unwrap();
        bld.transition(b, a, 1.0).unwrap();
        let chain = bld.build().unwrap();
        let _ = dead;
        let err = chain.absorption(&[1.0, 0.0, 0.0], &[dead]).unwrap_err();
        assert!(matches!(err, CtmcError::SingularSystem));
    }
}
