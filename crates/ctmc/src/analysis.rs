//! Structural diagnostics for chains: reachability, communicating classes,
//! and absorbing-state detection.
//!
//! Availability models are easy to mistype — a missing repair edge turns a
//! repairable chain into one with an absorbing failure state, and the
//! steady-state solver then fails with a generic "not irreducible" error.
//! These diagnostics point at the states responsible *before* solving.

use crate::state::StateId;
use crate::Ctmc;

/// Structural classification of a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureReport {
    /// Strongly connected components in reverse topological order (every
    /// edge between components points to an *earlier* entry), each listing
    /// its member states.
    pub components: Vec<Vec<StateId>>,
    /// States with no outgoing transitions at all.
    pub absorbing_states: Vec<StateId>,
    /// Whether the chain is irreducible (one component covering all states).
    pub irreducible: bool,
    /// States unreachable from state 0 (the conventional initial state).
    pub unreachable_from_start: Vec<StateId>,
}

impl Ctmc {
    /// Computes the structural diagnostics of this chain.
    pub fn structure(&self) -> StructureReport {
        let n = self.num_states();
        let components = tarjan_scc(self);
        let absorbing_states: Vec<StateId> = (0..n)
            .filter(|&i| self.adjacency()[i].is_empty())
            .map(StateId)
            .collect();
        let irreducible = components.len() == 1;

        // BFS from state 0.
        let mut seen = vec![false; n];
        if n > 0 {
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(i) = stack.pop() {
                for &(j, _) in &self.adjacency()[i] {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        let unreachable_from_start = (0..n).filter(|&i| !seen[i]).map(StateId).collect();

        StructureReport {
            components,
            absorbing_states,
            irreducible,
            unreachable_from_start,
        }
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative).
fn tarjan_scc(chain: &Ctmc) -> Vec<Vec<StateId>> {
    let n = chain.num_states();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<StateId>> = Vec::new();

    // Explicit DFS stack of (node, edge cursor).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let edges = &chain.adjacency()[v];
            if *cursor < edges.len() {
                let (w, _) = edges[*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // v is finished.
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        component.push(StateId(w));
                        if w == v {
                            break;
                        }
                    }
                    component.sort();
                    components.push(component);
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {

    use crate::CtmcBuilder;

    #[test]
    fn irreducible_chain_is_one_component() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let c = b.state("b").unwrap();
        b.transition(a, c, 1.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        let report = b.build().unwrap().structure();
        assert!(report.irreducible);
        assert_eq!(report.components.len(), 1);
        assert!(report.absorbing_states.is_empty());
        assert!(report.unreachable_from_start.is_empty());
    }

    #[test]
    fn absorbing_state_detected() {
        let mut b = CtmcBuilder::new();
        let a = b.state("alive").unwrap();
        let dead = b.state("dead").unwrap();
        b.transition(a, dead, 0.1).unwrap();
        let chain = b.build().unwrap();
        let report = chain.structure();
        assert!(!report.irreducible);
        assert_eq!(report.absorbing_states, vec![dead]);
        assert_eq!(report.components.len(), 2);
    }

    #[test]
    fn unreachable_state_detected() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a").unwrap();
        let c = b.state("b").unwrap();
        let island = b.state("island").unwrap();
        b.transition(a, c, 1.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        b.transition(island, a, 1.0).unwrap(); // island reaches us, not vice versa
        let report = b.build().unwrap().structure();
        assert!(!report.irreducible);
        assert_eq!(report.unreachable_from_start, vec![island]);
    }

    #[test]
    fn two_cycles_with_bridge_are_two_components() {
        let mut b = CtmcBuilder::new();
        let ids: Vec<_> = (0..4).map(|i| b.state(format!("s{i}")).unwrap()).collect();
        b.transition(ids[0], ids[1], 1.0).unwrap();
        b.transition(ids[1], ids[0], 1.0).unwrap();
        b.transition(ids[2], ids[3], 1.0).unwrap();
        b.transition(ids[3], ids[2], 1.0).unwrap();
        b.transition(ids[0], ids[2], 0.5).unwrap(); // one-way bridge
        let report = b.build().unwrap().structure();
        assert_eq!(report.components.len(), 2);
        assert!(!report.irreducible);
        // Reverse topological order: the sink component {2,3} first.
        assert_eq!(report.components[0], vec![ids[2], ids[3]]);
    }

    #[test]
    fn paper_chain_is_irreducible() {
        // The Fig. 2 structure must classify as one component.
        let mut b = CtmcBuilder::new();
        let op = b.state("OP").unwrap();
        let exp = b.state("EXP").unwrap();
        let du = b.state("DU").unwrap();
        let dl = b.state("DL").unwrap();
        b.transition(op, exp, 4e-6).unwrap();
        b.transition(exp, op, 0.099).unwrap();
        b.transition(exp, du, 0.01).unwrap();
        b.transition(exp, dl, 3e-6).unwrap();
        b.transition(du, op, 0.99).unwrap();
        b.transition(du, dl, 0.01).unwrap();
        b.transition(dl, op, 0.03).unwrap();
        let report = b.build().unwrap().structure();
        assert!(report.irreducible);
    }

    #[test]
    fn single_state_chain() {
        let mut b = CtmcBuilder::new();
        b.state("only").unwrap();
        let report = b.build().unwrap().structure();
        assert_eq!(report.components.len(), 1);
        assert_eq!(report.absorbing_states.len(), 1);
    }
}
