//! # availsim-ctmc
//!
//! A small, self-contained continuous-time Markov chain (CTMC) engine built
//! for dependability and availability models.
//!
//! Chains are built with [`CtmcBuilder`], then analyzed:
//!
//! * **Steady state** — [`Ctmc::steady_state`] uses the cancellation-free
//!   GTH elimination (see [`steady_state_gth`]), which keeps componentwise relative
//!   accuracy even when stationary probabilities span many orders of
//!   magnitude, as they do in availability chains. LU and power-iteration
//!   solvers are available through [`Ctmc::steady_state_with`] for
//!   cross-checking.
//! * **Transient analysis** — [`Ctmc::transient`] implements uniformization
//!   (Jensen's method) with numerically stable Poisson weights, and
//!   [`Ctmc::cumulative_occupancy`] integrates state probabilities over a
//!   mission window (interval availability).
//! * **Absorbing analysis** — [`Ctmc::absorption`] computes mean time to
//!   absorption (MTTF / MTTDL) and absorption probabilities.
//!
//! # Examples
//!
//! A repairable two-state system with failure rate λ and repair rate μ has
//! steady-state availability μ/(λ+μ):
//!
//! ```
//! use availsim_ctmc::CtmcBuilder;
//!
//! # fn main() -> Result<(), availsim_ctmc::CtmcError> {
//! let mut b = CtmcBuilder::new();
//! let up = b.state("up")?;
//! let down = b.state("down")?;
//! b.transition(up, down, 1e-4)?; // λ
//! b.transition(down, up, 1e-1)?; // μ
//! let chain = b.build()?;
//! let a = chain.steady_state_reward(&chain.indicator(&[up]))?;
//! assert!((a - 0.1 / (0.1 + 1e-4)).abs() < 1e-15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absorbing;
mod analysis;
mod builder;
mod dense;
mod dtmc;
mod error;
mod gth;
mod lu;
mod rewards;
mod sparse;
mod state;
mod steady_state;
mod transient;

pub use absorbing::AbsorptionAnalysis;
pub use analysis::StructureReport;
pub use builder::CtmcBuilder;
pub use dense::DenseMatrix;
pub use dtmc::Dtmc;
pub use error::{CtmcError, Result};
pub use gth::{steady_state_gth, steady_state_gth_rates};
pub use lu::{solve as lu_solve, LuFactors};
pub use rewards::RewardModel;
pub use sparse::CsrMatrix;
pub use state::{StateId, StateSpace};
pub use steady_state::SteadyStateMethod;

/// A continuous-time Markov chain with labeled states.
///
/// Construct with [`CtmcBuilder`]. All probability vectors returned by the
/// analyses are indexed by [`StateId::index`].
#[derive(Debug, Clone)]
pub struct Ctmc {
    states: StateSpace,
    /// Outgoing adjacency per state: sorted `(dst, rate)` with `rate > 0`.
    adjacency: Vec<Vec<(usize, f64)>>,
    exit_rates: Vec<f64>,
}

impl Ctmc {
    pub(crate) fn from_parts(states: StateSpace, adjacency: Vec<Vec<(usize, f64)>>) -> Self {
        let exit_rates = adjacency
            .iter()
            .map(|row| row.iter().map(|&(_, r)| r).sum())
            .collect();
        Ctmc {
            states,
            adjacency,
            exit_rates,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct transitions with positive rate.
    pub fn num_transitions(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// The labeled state space.
    pub fn states(&self) -> &StateSpace {
        &self.states
    }

    /// Looks a state up by label.
    pub fn find_state(&self, label: &str) -> Option<StateId> {
        self.states.find(label)
    }

    /// Iterates over all transitions as `(from, to, rate)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, StateId, f64)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&(j, r)| (StateId(i), StateId(j), r)))
    }

    /// Total outgoing rate of a state.
    ///
    /// # Panics
    /// Panics if `s` does not belong to this chain.
    pub fn exit_rate(&self, s: StateId) -> f64 {
        self.exit_rates[s.0]
    }

    /// Rate of the transition `from -> to` (zero if absent).
    pub fn rate(&self, from: StateId, to: StateId) -> f64 {
        self.adjacency[from.0]
            .iter()
            .find(|&&(c, _)| c == to.0)
            .map_or(0.0, |&(_, r)| r)
    }

    /// The infinitesimal generator `Q` as a dense matrix (rows sum to zero).
    pub fn generator(&self) -> DenseMatrix {
        let n = self.num_states();
        let mut q = DenseMatrix::zeros(n, n);
        for (i, row) in self.adjacency.iter().enumerate() {
            for &(j, r) in row {
                q[(i, j)] += r;
            }
            q[(i, i)] = -self.exit_rates[i];
        }
        q
    }

    /// The uniformization rate `Λ = 1.02 · max_i exit_rate(i)`,
    /// with the margin ensuring the uniformized DTMC is aperiodic.
    pub fn uniformization_rate(&self) -> f64 {
        let max = self.exit_rates.iter().fold(0.0f64, |m, &r| m.max(r));
        if max == 0.0 {
            1.0
        } else {
            max * 1.02
        }
    }

    /// The uniformized probability matrix `P = I + Q/Λ` (CSR) and `Λ`.
    pub fn uniformized(&self) -> (CsrMatrix, f64) {
        let lambda = self.uniformization_rate();
        let n = self.num_states();
        let mut triplets = Vec::with_capacity(self.num_transitions() + n);
        for (i, row) in self.adjacency.iter().enumerate() {
            for &(j, r) in row {
                triplets.push((i, j, r / lambda));
            }
            triplets.push((i, i, 1.0 - self.exit_rates[i] / lambda));
        }
        let p = CsrMatrix::from_triplets(n, n, &triplets)
            .expect("uniformized matrix indices are in range by construction");
        (p, lambda)
    }

    /// Builds a 0/1 reward (indicator) vector over the given states.
    pub fn indicator(&self, states: &[StateId]) -> Vec<f64> {
        let mut v = vec![0.0; self.num_states()];
        for s in states {
            v[s.0] = 1.0;
        }
        v
    }

    /// Stationary distribution via GTH elimination (the recommended solver).
    ///
    /// # Errors
    /// Returns [`CtmcError::NotIrreducible`] for reducible chains.
    pub fn steady_state(&self) -> Result<Vec<f64>> {
        gth::steady_state_gth(self)
    }

    /// Stationary distribution using an explicitly chosen method.
    ///
    /// # Errors
    /// Propagates the chosen solver's errors; see [`SteadyStateMethod`].
    pub fn steady_state_with(&self, method: SteadyStateMethod) -> Result<Vec<f64>> {
        steady_state::solve(self, method)
    }

    /// Expected steady-state reward `Σ_i π_i · reward_i`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if the reward vector has the
    /// wrong length, and propagates steady-state errors.
    pub fn steady_state_reward(&self, rewards: &[f64]) -> Result<f64> {
        if rewards.len() != self.num_states() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states(),
                actual: rewards.len(),
            });
        }
        let pi = self.steady_state()?;
        Ok(pi.iter().zip(rewards).map(|(p, r)| p * r).sum())
    }

    /// State distribution at time `t` starting from `p0`, via uniformization
    /// with truncation error below `tol`.
    ///
    /// # Errors
    /// Returns [`CtmcError::InvalidDistribution`] if `p0` is not a probability
    /// vector over the chain's states.
    pub fn transient(&self, p0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>> {
        transient::transient(self, p0, t, tol)
    }

    /// Expected time spent in each state during `[0, t]`, starting from `p0`.
    ///
    /// The entries sum to `t`. Dividing by `t` gives interval availability
    /// when dotted with an up-state indicator.
    ///
    /// # Errors
    /// Returns [`CtmcError::InvalidDistribution`] if `p0` is invalid.
    pub fn cumulative_occupancy(&self, p0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>> {
        transient::cumulative_occupancy(self, p0, t, tol)
    }

    /// Mean time to absorption and related quantities.
    ///
    /// # Errors
    /// See the [`AbsorptionAnalysis`] documentation: invalid absorbing sets
    /// and unreachable absorbing states produce errors.
    pub fn absorption(&self, initial: &[f64], absorbing: &[StateId]) -> Result<AbsorptionAnalysis> {
        absorbing::absorption(self, initial, absorbing)
    }

    /// The embedded (jump) DTMC of this chain.
    ///
    /// # Errors
    /// Returns [`CtmcError::NotIrreducible`] if some state has no outgoing
    /// transition (jump probabilities undefined).
    pub fn embedded(&self) -> Result<Dtmc> {
        dtmc::embedded(self)
    }

    /// A copy of this chain with the outgoing transitions of the given
    /// states removed, making them absorbing — the transformation behind
    /// reliability (first-passage) analyses on availability chains.
    pub fn absorbing_variant(&self, absorbing: &[StateId]) -> Ctmc {
        let mut adjacency = self.adjacency.clone();
        for s in absorbing {
            adjacency[s.0].clear();
        }
        Ctmc::from_parts(self.states.clone(), adjacency)
    }

    /// Probability that the chain has **not** entered any of the `absorbing`
    /// states by time `t`, starting from `p0` — the mission reliability when
    /// the absorbing set is "data loss".
    ///
    /// # Errors
    /// Returns [`CtmcError::InvalidDistribution`] for an invalid `p0` and
    /// propagates transient-solver errors.
    pub fn survival_probability(
        &self,
        p0: &[f64],
        absorbing: &[StateId],
        t: f64,
        tol: f64,
    ) -> Result<f64> {
        let trapped = self.absorbing_variant(absorbing);
        let p = trapped.transient(p0, t, tol)?;
        let dead: f64 = absorbing.iter().map(|s| p[s.0]).sum();
        Ok((1.0 - dead).clamp(0.0, 1.0))
    }

    pub(crate) fn adjacency(&self) -> &[Vec<(usize, f64)>] {
        &self.adjacency
    }
}

/// Validates that `p` is a probability distribution of length `n`.
pub(crate) fn validate_distribution(p: &[f64], n: usize) -> Result<()> {
    if p.len() != n {
        return Err(CtmcError::InvalidDistribution(format!(
            "length {} does not match state count {n}",
            p.len()
        )));
    }
    let mut total = 0.0;
    for &v in p {
        if !v.is_finite() || v < 0.0 {
            return Err(CtmcError::InvalidDistribution(format!(
                "entry {v} is not a probability"
            )));
        }
        total += v;
    }
    if (total - 1.0).abs() > 1e-9 {
        return Err(CtmcError::InvalidDistribution(format!(
            "entries sum to {total}, expected 1"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repairable_pair() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, 0.25).unwrap();
        b.transition(down, up, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let chain = repairable_pair();
        let q = chain.generator();
        for i in 0..q.rows() {
            let sum: f64 = (0..q.cols()).map(|j| q[(i, j)]).sum();
            assert!(sum.abs() < 1e-15);
        }
    }

    #[test]
    fn rate_lookup() {
        let chain = repairable_pair();
        let up = chain.find_state("up").unwrap();
        let down = chain.find_state("down").unwrap();
        assert_eq!(chain.rate(up, down), 0.25);
        assert_eq!(chain.rate(down, up), 1.0);
        assert_eq!(chain.rate(up, up), 0.0);
        assert_eq!(chain.exit_rate(up), 0.25);
    }

    #[test]
    fn uniformized_rows_are_stochastic() {
        let chain = repairable_pair();
        let (p, lambda) = chain.uniformized();
        assert!(lambda >= 1.0);
        for r in 0..p.rows() {
            let sum: f64 = p.row(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn steady_state_reward_is_availability() {
        let chain = repairable_pair();
        let up = chain.find_state("up").unwrap();
        let a = chain.steady_state_reward(&chain.indicator(&[up])).unwrap();
        assert!((a - 0.8).abs() < 1e-12);
    }

    #[test]
    fn reward_vector_length_checked() {
        let chain = repairable_pair();
        assert!(chain.steady_state_reward(&[1.0]).is_err());
    }

    #[test]
    fn absorbing_variant_truly_absorbs() {
        let chain = repairable_pair();
        let down = chain.find_state("down").unwrap();
        let trapped = chain.absorbing_variant(&[down]);
        assert_eq!(trapped.exit_rate(down), 0.0);
        assert_eq!(trapped.num_transitions(), 1);
        // The original is untouched.
        assert_eq!(chain.num_transitions(), 2);
    }

    #[test]
    fn survival_matches_exponential_law() {
        // up -> down at rate λ with no repair: survival = e^{-λt}.
        let mut b = CtmcBuilder::new();
        let up = b.state("up").unwrap();
        let down = b.state("down").unwrap();
        b.transition(up, down, 0.02).unwrap();
        b.transition(down, up, 5.0).unwrap(); // removed by the variant
        let chain = b.build().unwrap();
        for &t in &[1.0, 10.0, 100.0] {
            let s = chain
                .survival_probability(&[1.0, 0.0], &[down], t, 1e-12)
                .unwrap();
            let expect = (-0.02 * t).exp();
            assert!((s - expect).abs() < 1e-9, "t={t}: {s} vs {expect}");
        }
    }

    #[test]
    fn survival_is_monotone_in_time() {
        let chain = repairable_pair();
        let down = chain.find_state("down").unwrap();
        let mut prev = 1.0;
        for &t in &[0.5, 1.0, 5.0, 20.0] {
            let s = chain
                .survival_probability(&[1.0, 0.0], &[down], t, 1e-12)
                .unwrap();
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn distribution_validation() {
        assert!(validate_distribution(&[0.5, 0.5], 2).is_ok());
        assert!(validate_distribution(&[0.5], 2).is_err());
        assert!(validate_distribution(&[1.5, -0.5], 2).is_err());
        assert!(validate_distribution(&[0.2, 0.2], 2).is_err());
        assert!(validate_distribution(&[f64::NAN, 1.0], 2).is_err());
    }
}
