//! Alternative steady-state solvers used for cross-validation of GTH.

use crate::dense::DenseMatrix;
use crate::error::{CtmcError, Result};
use crate::gth;
use crate::lu::LuFactors;
use crate::Ctmc;

/// Choice of stationary-distribution algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SteadyStateMethod {
    /// Grassmann–Taksar–Heyman elimination (default; cancellation-free).
    #[default]
    Gth,
    /// Direct LU solve of `πQ = 0` with the normalization `Σπ = 1` replacing
    /// one equation. Accurate for the dominant components; small components
    /// may lose relative accuracy.
    DirectLu,
    /// Power iteration on the uniformized DTMC `P = I + Q/Λ`.
    Power {
        /// Maximum iterations before giving up.
        max_iterations: usize,
        /// Convergence threshold on the L1 change per iteration.
        tolerance: f64,
    },
}

pub(crate) fn solve(chain: &Ctmc, method: SteadyStateMethod) -> Result<Vec<f64>> {
    match method {
        SteadyStateMethod::Gth => gth::steady_state_gth(chain),
        SteadyStateMethod::DirectLu => direct_lu(chain),
        SteadyStateMethod::Power {
            max_iterations,
            tolerance,
        } => power(chain, max_iterations, tolerance),
    }
}

/// Solves `Qᵀ πᵀ = 0` with the last equation replaced by `Σπ = 1`.
fn direct_lu(chain: &Ctmc) -> Result<Vec<f64>> {
    let n = chain.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }
    let q = chain.generator();
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = q[(j, i)]; // transpose
        }
    }
    // Replace the last row with the normalization constraint.
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = LuFactors::new(&a)?.solve(&b)?;
    // Clamp tiny negative round-off and renormalize.
    let mut pi: Vec<f64> = pi.into_iter().map(|p| p.max(0.0)).collect();
    let total: f64 = pi.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return Err(CtmcError::SingularSystem);
    }
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

/// Power iteration `π ← πP` on the uniformized chain.
fn power(chain: &Ctmc, max_iterations: usize, tolerance: f64) -> Result<Vec<f64>> {
    let n = chain.num_states();
    if n == 0 {
        return Err(CtmcError::EmptyChain);
    }
    let (p, _) = chain.uniformized();
    let mut pi = vec![1.0 / n as f64; n];
    let mut residual = f64::INFINITY;
    for _ in 0..max_iterations {
        let next = p.vec_mul(&pi)?;
        residual = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        pi = next;
        if residual < tolerance {
            // One extra normalization pass to shed accumulated round-off.
            let total: f64 = pi.iter().sum();
            for v in &mut pi {
                *v /= total;
            }
            return Ok(pi);
        }
    }
    Err(CtmcError::NoConvergence {
        iterations: max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn three_state() -> Ctmc {
        let mut b = CtmcBuilder::new();
        let s0 = b.state("op").unwrap();
        let s1 = b.state("exp").unwrap();
        let s2 = b.state("dl").unwrap();
        b.transition(s0, s1, 4e-3).unwrap();
        b.transition(s1, s0, 0.1).unwrap();
        b.transition(s1, s2, 3e-3).unwrap();
        b.transition(s2, s0, 0.03).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn all_methods_agree_on_dominant_components() {
        let chain = three_state();
        let gth = chain.steady_state().unwrap();
        let lu = chain
            .steady_state_with(SteadyStateMethod::DirectLu)
            .unwrap();
        let pow = chain
            .steady_state_with(SteadyStateMethod::Power {
                max_iterations: 2_000_000,
                tolerance: 1e-14,
            })
            .unwrap();
        for i in 0..3 {
            assert!((gth[i] - lu[i]).abs() < 1e-10, "gth vs lu at {i}");
            assert!((gth[i] - pow[i]).abs() < 1e-8, "gth vs power at {i}");
        }
    }

    #[test]
    fn lu_distribution_is_normalized() {
        let chain = three_state();
        let pi = chain
            .steady_state_with(SteadyStateMethod::DirectLu)
            .unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn power_reports_non_convergence() {
        let chain = three_state();
        let err = chain
            .steady_state_with(SteadyStateMethod::Power {
                max_iterations: 1,
                tolerance: 1e-30,
            })
            .unwrap_err();
        assert!(matches!(err, CtmcError::NoConvergence { .. }));
    }

    #[test]
    fn default_method_is_gth() {
        assert_eq!(SteadyStateMethod::default(), SteadyStateMethod::Gth);
    }
}
