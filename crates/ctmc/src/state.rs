//! State identifiers and labeled state spaces.

use crate::error::{CtmcError, Result};
use std::collections::HashMap;
use std::fmt;

/// An opaque handle to a state of a chain.
///
/// Handles are only meaningful for the chain (or builder) that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The dense index of this state inside its chain, usable to index the
    /// probability vectors returned by the solvers.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An ordered collection of uniquely labeled states.
#[derive(Debug, Clone, Default)]
pub struct StateSpace {
    labels: Vec<String>,
    index: HashMap<String, usize>,
}

impl StateSpace {
    /// Creates an empty state space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state with the given label and returns its handle.
    ///
    /// # Errors
    /// Returns [`CtmcError::DuplicateState`] if the label already exists.
    pub fn add(&mut self, label: impl Into<String>) -> Result<StateId> {
        let label = label.into();
        if self.index.contains_key(&label) {
            return Err(CtmcError::DuplicateState(label));
        }
        let id = self.labels.len();
        self.index.insert(label.clone(), id);
        self.labels.push(label);
        Ok(StateId(id))
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the space has no states.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of a state.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this space.
    pub fn label(&self, id: StateId) -> &str {
        &self.labels[id.0]
    }

    /// Looks a state up by label.
    pub fn find(&self, label: &str) -> Option<StateId> {
        self.index.get(label).copied().map(StateId)
    }

    /// Returns the handle of the state at a dense index, if it exists.
    pub fn nth(&self, index: usize) -> Option<StateId> {
        (index < self.labels.len()).then_some(StateId(index))
    }

    /// Iterates over `(StateId, label)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (StateId(i), l.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = StateSpace::new();
        let op = s.add("OP").unwrap();
        let exp = s.add("EXP").unwrap();
        assert_eq!(op.index(), 0);
        assert_eq!(exp.index(), 1);
        assert_eq!(s.find("OP"), Some(op));
        assert_eq!(s.find("missing"), None);
        assert_eq!(s.label(exp), "EXP");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut s = StateSpace::new();
        s.add("OP").unwrap();
        assert_eq!(
            s.add("OP").unwrap_err(),
            CtmcError::DuplicateState("OP".into())
        );
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut s = StateSpace::new();
        for label in ["a", "b", "c"] {
            s.add(label).unwrap();
        }
        let labels: Vec<&str> = s.iter().map(|(_, l)| l).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn state_id_displays_with_index() {
        let mut s = StateSpace::new();
        let id = s.add("x").unwrap();
        assert_eq!(id.to_string(), "s0");
    }
}
