//! Compressed sparse row (CSR) matrix for iterative methods.
//!
//! Uniformization and power iteration only need matrix-vector products; CSR
//! keeps those O(nnz) even for chains with hundreds of states.

use crate::error::{CtmcError, Result};

/// A CSR sparse matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets. Duplicate
    /// coordinates are summed; explicit zeros are dropped.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if any coordinate is out of
    /// bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows {
                return Err(CtmcError::DimensionMismatch {
                    expected: rows,
                    actual: r,
                });
            }
            if c >= cols {
                return Err(CtmcError::DimensionMismatch {
                    expected: cols,
                    actual: c,
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|a| (a.0, a.1));

        // Merge duplicate coordinates, then drop entries that summed to zero.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|e| e.2 != 0.0);

        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = merged.iter().map(|e| e.1).collect();
        let values = merged.iter().map(|e| e.2).collect();
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the entries of one row as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Computes `y = self * x`.
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(CtmcError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Computes the row-vector product `y = x * self` (used for distribution
    /// propagation, where `x` is a probability row vector).
    ///
    /// # Errors
    /// Returns [`CtmcError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(CtmcError::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                y[c] += xr * v;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_multiplies() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(m.nnz(), 3);
        let y = m.mul_vec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.mul_vec(&[2.0]).unwrap(), vec![7.0]);
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 0.0), (1, 0, 4.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn vec_mul_is_left_product() {
        // [1 2; 3 4] as sparse; x * M with x = [1, 1] -> [4, 6]
        let m =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)])
                .unwrap();
        assert_eq!(m.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(1, 1, &[(0, 3, 1.0)]).is_err());
    }

    #[test]
    fn empty_rows_have_empty_iterators() {
        let m = CsrMatrix::from_triplets(3, 3, &[(2, 0, 1.0)]).unwrap();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).count(), 1);
    }

    #[test]
    fn dimension_checks_on_products() {
        let m = CsrMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(m.mul_vec(&[0.0; 2]).is_err());
        assert!(m.vec_mul(&[0.0; 3]).is_err());
    }
}
