//! Property-based tests for the CTMC engine.
//!
//! Chains are generated as a ring (guaranteeing irreducibility) plus random
//! chords, with rates spanning several orders of magnitude — the regime
//! availability models live in.

use availsim_ctmc::{Ctmc, CtmcBuilder, StateId, SteadyStateMethod};
use proptest::prelude::*;

/// Strategy: an irreducible CTMC with `n` states and extra random edges.
fn arb_chain(max_states: usize) -> impl Strategy<Value = Ctmc> {
    (2usize..=max_states)
        .prop_flat_map(|n| {
            // Ring rates are kept >= 0.1 so every generated chain mixes fast;
            // slow dynamics would force uniformization horizons of 1e6+ steps
            // and turn the suite into a benchmark. Chord rates still span
            // five orders of magnitude to exercise the rare-event regime.
            let ring_rates = proptest::collection::vec(0.1f64..10.0, n);
            let chords = proptest::collection::vec(((0..n), (0..n), 1e-5f64..10.0), 0..(2 * n));
            (Just(n), ring_rates, chords)
        })
        .prop_map(|(n, ring, chords)| {
            let mut b = CtmcBuilder::new();
            let ids: Vec<StateId> = (0..n).map(|i| b.state(format!("s{i}")).unwrap()).collect();
            for (i, &r) in ring.iter().enumerate() {
                b.transition(ids[i], ids[(i + 1) % n], r).unwrap();
            }
            for (i, j, r) in chords {
                if i != j {
                    b.transition(ids[i], ids[j], r).unwrap();
                }
            }
            b.build().unwrap()
        })
}

fn l1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn steady_state_is_a_distribution(chain in arb_chain(12)) {
        let pi = chain.steady_state().unwrap();
        prop_assert!(pi.iter().all(|&p| p >= 0.0 && p.is_finite()));
        let total: f64 = pi.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steady_state_satisfies_balance_equations(chain in arb_chain(10)) {
        let pi = chain.steady_state().unwrap();
        let q = chain.generator();
        let residual = q.vec_mul(&pi).unwrap();
        // Scale-aware residual check.
        let scale = q.max_abs().max(1.0);
        prop_assert!(l1(&residual) / scale < 1e-10, "residual {}", l1(&residual));
    }

    #[test]
    fn gth_and_lu_agree(chain in arb_chain(10)) {
        let gth = chain.steady_state().unwrap();
        let lu = chain.steady_state_with(SteadyStateMethod::DirectLu).unwrap();
        for (a, b) in gth.iter().zip(&lu) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn transient_preserves_probability(chain in arb_chain(8), t in 0.0f64..50.0) {
        let n = chain.num_states();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let p = chain.transient(&p0, t, 1e-12).unwrap();
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transient_at_large_time_reaches_steady_state(chain in arb_chain(6)) {
        let n = chain.num_states();
        let mut p0 = vec![0.0; n];
        p0[n - 1] = 1.0;
        // The ring keeps every state connected at rates >= 0.1, so the chain
        // mixes well within a horizon of 1e3.
        let p = chain.transient(&p0, 1e3, 1e-12).unwrap();
        let pi = chain.steady_state().unwrap();
        for (a, b) in p.iter().zip(&pi) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn occupancy_sums_to_horizon(chain in arb_chain(8), t in 0.01f64..100.0) {
        let n = chain.num_states();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let occ = chain.cumulative_occupancy(&p0, t, 1e-12).unwrap();
        prop_assert!(occ.iter().all(|&x| x >= -1e-12));
        let total: f64 = occ.iter().sum();
        prop_assert!((total - t).abs() < 1e-5 * t.max(1.0), "total {total} vs t {t}");
    }

    #[test]
    fn absorption_probabilities_sum_to_one(chain in arb_chain(8)) {
        // Make the last state absorbing by analysis (the chain itself remains
        // irreducible; `absorption` treats the target set as absorbing).
        let n = chain.num_states();
        let target = chain.states().nth(n - 1).unwrap();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let res = chain.absorption(&p0, &[target]).unwrap();
        prop_assert!(res.mean_time.is_finite() && res.mean_time >= 0.0);
        let total: f64 = res.absorption_probabilities.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "total {total}");
    }

    #[test]
    fn uniformized_matrix_is_stochastic(chain in arb_chain(12)) {
        let (p, lambda) = chain.uniformized();
        prop_assert!(lambda > 0.0);
        for r in 0..p.rows() {
            let sum: f64 = p.row(r).map(|(_, v)| v).sum();
            prop_assert!((sum - 1.0).abs() < 1e-12);
            prop_assert!(p.row(r).all(|(_, v)| v >= 0.0));
        }
    }

    #[test]
    fn embedded_chain_roundtrip(chain in arb_chain(8)) {
        let d = chain.embedded().unwrap();
        let pi_jump = d.stationary(500_000, 1e-13).unwrap();
        let pi = d.to_ctmc_stationary(&pi_jump).unwrap();
        let gth = chain.steady_state().unwrap();
        for (a, b) in pi.iter().zip(&gth) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}

// Numerical-invariant suite: every steady-state solver must return a genuine
// probability distribution, and the independent factorizations must agree on
// it — the workspace's first line of defense against silent solver drift.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_steady_state_is_a_distribution(chain in arb_chain(10)) {
        let lu = chain.steady_state_with(SteadyStateMethod::DirectLu).unwrap();
        prop_assert!(lu.iter().all(|&p| p >= -1e-12 && p.is_finite()));
        let total: f64 = lu.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10, "LU sum {total}");
    }

    #[test]
    fn gth_and_lu_sums_both_normalize(chain in arb_chain(12)) {
        let gth: f64 = chain.steady_state().unwrap().iter().sum();
        let lu: f64 = chain
            .steady_state_with(SteadyStateMethod::DirectLu)
            .unwrap()
            .iter()
            .sum();
        prop_assert!((gth - 1.0).abs() < 1e-12, "GTH sum {gth}");
        prop_assert!((lu - 1.0).abs() < 1e-10, "LU sum {lu}");
        prop_assert!((gth - lu).abs() < 1e-10, "sums diverge: {gth} vs {lu}");
    }

    #[test]
    fn power_iteration_agrees_with_gth(chain in arb_chain(8)) {
        let gth = chain.steady_state().unwrap();
        let pow = chain
            .steady_state_with(SteadyStateMethod::Power {
                max_iterations: 2_000_000,
                tolerance: 1e-14,
            })
            .unwrap();
        let total: f64 = pow.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10, "power sum {total}");
        for (a, b) in gth.iter().zip(&pow) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
