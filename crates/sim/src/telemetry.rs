//! Deterministic engine telemetry: mask-gated counters, block-mergeable
//! snapshots, phase spans, and Prometheus text exposition.
//!
//! Every engine layer reports into a per-worker [`Telemetry`] registry —
//! indexed-queue traffic, RNG draws by distribution, jump-chain
//! transitions by edge, fleet crew-queue waits, domain strikes and DR
//! fail-over traffic, splitting stage survival. The registry is **mask-gated**: a disabled
//! registry turns every update into `counts[i] += n & 0`, a branch-free
//! no-op that costs nothing measurable on the hot paths (gated in
//! `perf_mc`, recorded in `BENCH_7.json`).
//!
//! Aggregation rides the engines' existing block merge: each worker
//! drains its registry into a [`CounterSnapshot`] per iteration block,
//! and snapshots [`merge`](CounterSnapshot::merge) in block order — sum
//! for flow counters, max for high-water marks — so the merged snapshot
//! is **deterministic at any worker count**, exactly like the estimates
//! themselves. Wall-clock measurements ([`PhaseSpans`]) never enter a
//! snapshot; they are reported separately in a clearly-marked
//! nondeterministic section.
//!
//! Telemetry only counts — it never draws from the RNG, reorders events,
//! or changes a floating-point operation — so enabling it preserves the
//! bit-identity contracts of every engine.
//!
//! # Examples
//!
//! ```
//! use availsim_sim::telemetry::{Counter, CounterSnapshot, Telemetry};
//!
//! let mut tele = Telemetry::new(true);
//! tele.bump(Counter::Missions);
//! tele.add(Counter::RngExpDraws, 3);
//! let block_a = tele.take();
//!
//! let mut off = Telemetry::new(false);
//! off.bump(Counter::Missions); // branch-free no-op
//! let block_b = off.take();
//!
//! let mut merged = CounterSnapshot::default();
//! merged.merge(&block_a);
//! merged.merge(&block_b);
//! assert_eq!(merged.get(Counter::Missions), 1);
//! assert_eq!(merged.get(Counter::RngExpDraws), 3);
//! ```

/// Number of distinct counters in the registry.
pub const COUNTERS: usize = 33;

/// The deterministic engine counters, one registry slot each.
///
/// Names follow the exposition metric names (see [`Counter::name`]); the
/// README "Observability" section is the reference table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Simulated missions (iterations) completed.
    Missions = 0,
    /// Events accepted by an indexed queue (including ones later
    /// cancelled or drained), plus the expired ones counted below.
    QueueScheduled,
    /// Events popped and delivered by `pop` / `pop_due`.
    QueueFired,
    /// Events removed without firing: explicit `cancel`, bulk
    /// `cancel_all`, and entries drained by `clear`.
    QueueCancelled,
    /// Drawn delays that landed past the mission horizon and were never
    /// enqueued (`note_expired`).
    QueueExpired,
    /// Linear-to-heap regime crossings (the schedule that exceeded the
    /// linear-scan threshold and triggered `heapify`).
    QueueHeapCrossings,
    /// High-water mark of simultaneously queued events (max-merged).
    QueueDepthHighWater,
    /// Exponential delay draws (`sample_exp` family).
    RngExpDraws,
    /// Uniform draws (jump-chain winner picks, splitting clones).
    RngUniformDraws,
    /// Lifetime-model draws (`FailureModel::sample_ttf`, any
    /// distribution).
    RngLifetimeDraws,
    /// Fig. 2 jump-chain edge OP → EXP (disk failure).
    JumpOpToExp,
    /// Fig. 2 jump-chain edge EXP → OP (successful repair).
    JumpExpToOp,
    /// Fig. 2 jump-chain edge EXP → DU (wrong replacement).
    JumpExpToDu,
    /// Fig. 2 jump-chain edge EXP → DL (second disk failure).
    JumpExpToDl,
    /// Fig. 2 jump-chain edge DU → OP (human-error recovery).
    JumpDuToOp,
    /// Fig. 2 jump-chain edge DU → DL (removed-disk crash).
    JumpDuToDl,
    /// Fig. 2 jump-chain edge DL → OP (restore from backup).
    JumpDlToOp,
    /// Jump-chain transitions over all engines and edges (includes the
    /// twelve-state fail-over chain, which is not broken out by edge).
    JumpTransitions,
    /// Fleet arrays that had to wait for a repair crew (FIFO enqueues).
    FleetCrewWaits,
    /// Fleet domain (whole-shelf) knockout strikes.
    FleetDomainStrikes,
    /// Fleet arrays admitted to the shared DR site (fail-overs).
    FleetFailovers,
    /// Fleet arrays that found the DR site full and queued FIFO.
    FleetDrQueueWaits,
    /// Fleet arrays rejected by a full DR site (Erlang-loss policy).
    FleetDrRejections,
    /// Fleet arrays switched back from DR to their primary (fail-backs).
    FleetFailbacks,
    /// Splitting stage-1 survivors (missions reaching a first failure).
    SplitStage1Survivors,
    /// Splitting stage-2 survivors (clones reaching a down state).
    SplitStage2Survivors,
    /// Rebuild completions that hit a latent sector error and lost data
    /// instead of returning the array to service.
    RebuildLseHits,
    /// Data-loss (DL) entries across all engines — redundancy-exhausting
    /// failures, removed-disk crashes, and LSE-failed rebuilds.
    DataLossEvents,
    /// HTTP requests received by `availsim serve` (all endpoints).
    ServeRequests,
    /// Serve queries answered from the canonical-hash result cache.
    ServeCacheHits,
    /// Serve requests shed by admission control (`503 + Retry-After`).
    ServeSheds,
    /// Serve jobs that hit their deadline and returned a timeout error.
    ServeDeadlineExpiries,
    /// High-water mark of simultaneously queued serve jobs (max-merged).
    ServeQueueDepthHighWater,
}

/// How a counter merges across block snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Additive flow counter.
    Sum,
    /// High-water mark: merged value is the maximum.
    Max,
}

impl Counter {
    /// All counters, in registry (and exposition) order.
    pub const ALL: [Counter; COUNTERS] = [
        Counter::Missions,
        Counter::QueueScheduled,
        Counter::QueueFired,
        Counter::QueueCancelled,
        Counter::QueueExpired,
        Counter::QueueHeapCrossings,
        Counter::QueueDepthHighWater,
        Counter::RngExpDraws,
        Counter::RngUniformDraws,
        Counter::RngLifetimeDraws,
        Counter::JumpOpToExp,
        Counter::JumpExpToOp,
        Counter::JumpExpToDu,
        Counter::JumpExpToDl,
        Counter::JumpDuToOp,
        Counter::JumpDuToDl,
        Counter::JumpDlToOp,
        Counter::JumpTransitions,
        Counter::FleetCrewWaits,
        Counter::FleetDomainStrikes,
        Counter::FleetFailovers,
        Counter::FleetDrQueueWaits,
        Counter::FleetDrRejections,
        Counter::FleetFailbacks,
        Counter::SplitStage1Survivors,
        Counter::SplitStage2Survivors,
        Counter::RebuildLseHits,
        Counter::DataLossEvents,
        Counter::ServeRequests,
        Counter::ServeCacheHits,
        Counter::ServeSheds,
        Counter::ServeDeadlineExpiries,
        Counter::ServeQueueDepthHighWater,
    ];

    /// The exposition metric name (also the JSON snapshot key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Missions => "availsim_missions_total",
            Counter::QueueScheduled => "availsim_queue_scheduled_total",
            Counter::QueueFired => "availsim_queue_fired_total",
            Counter::QueueCancelled => "availsim_queue_cancelled_total",
            Counter::QueueExpired => "availsim_queue_expired_total",
            Counter::QueueHeapCrossings => "availsim_queue_heap_crossings_total",
            Counter::QueueDepthHighWater => "availsim_queue_depth_high_water",
            Counter::RngExpDraws => "availsim_rng_exp_draws_total",
            Counter::RngUniformDraws => "availsim_rng_uniform_draws_total",
            Counter::RngLifetimeDraws => "availsim_rng_lifetime_draws_total",
            Counter::JumpOpToExp => "availsim_jump_op_exp_total",
            Counter::JumpExpToOp => "availsim_jump_exp_op_total",
            Counter::JumpExpToDu => "availsim_jump_exp_du_total",
            Counter::JumpExpToDl => "availsim_jump_exp_dl_total",
            Counter::JumpDuToOp => "availsim_jump_du_op_total",
            Counter::JumpDuToDl => "availsim_jump_du_dl_total",
            Counter::JumpDlToOp => "availsim_jump_dl_op_total",
            Counter::JumpTransitions => "availsim_jump_transitions_total",
            Counter::FleetCrewWaits => "availsim_fleet_crew_waits_total",
            Counter::FleetDomainStrikes => "availsim_fleet_domain_strikes_total",
            Counter::FleetFailovers => "availsim_fleet_failovers_total",
            Counter::FleetDrQueueWaits => "availsim_fleet_dr_queue_waits_total",
            Counter::FleetDrRejections => "availsim_fleet_dr_rejections_total",
            Counter::FleetFailbacks => "availsim_fleet_failbacks_total",
            Counter::SplitStage1Survivors => "availsim_split_stage1_survivors_total",
            Counter::SplitStage2Survivors => "availsim_split_stage2_survivors_total",
            Counter::RebuildLseHits => "availsim_rebuild_lse_hits_total",
            Counter::DataLossEvents => "availsim_data_loss_events_total",
            Counter::ServeRequests => "availsim_serve_requests_total",
            Counter::ServeCacheHits => "availsim_serve_cache_hits_total",
            Counter::ServeSheds => "availsim_serve_sheds_total",
            Counter::ServeDeadlineExpiries => "availsim_serve_deadline_expiries_total",
            Counter::ServeQueueDepthHighWater => "availsim_serve_queue_depth_high_water",
        }
    }

    /// The engine layer the counter is reported from.
    pub fn layer(self) -> &'static str {
        match self {
            Counter::Missions => "runner",
            Counter::QueueScheduled
            | Counter::QueueFired
            | Counter::QueueCancelled
            | Counter::QueueExpired
            | Counter::QueueHeapCrossings
            | Counter::QueueDepthHighWater => "queue",
            Counter::RngExpDraws | Counter::RngUniformDraws | Counter::RngLifetimeDraws => "rng",
            Counter::JumpOpToExp
            | Counter::JumpExpToOp
            | Counter::JumpExpToDu
            | Counter::JumpExpToDl
            | Counter::JumpDuToOp
            | Counter::JumpDuToDl
            | Counter::JumpDlToOp
            | Counter::JumpTransitions => "jump-chain",
            Counter::FleetCrewWaits
            | Counter::FleetDomainStrikes
            | Counter::FleetFailovers
            | Counter::FleetDrQueueWaits
            | Counter::FleetDrRejections
            | Counter::FleetFailbacks => "fleet",
            Counter::SplitStage1Survivors | Counter::SplitStage2Survivors => "rare-event",
            Counter::RebuildLseHits | Counter::DataLossEvents => "data-loss",
            Counter::ServeRequests
            | Counter::ServeCacheHits
            | Counter::ServeSheds
            | Counter::ServeDeadlineExpiries
            | Counter::ServeQueueDepthHighWater => "serve",
        }
    }

    /// One-line meaning, used as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            Counter::Missions => "Simulated missions completed",
            Counter::QueueScheduled => "Events accepted by the indexed event queue",
            Counter::QueueFired => "Events popped and delivered by the indexed event queue",
            Counter::QueueCancelled => "Events cancelled or drained without firing",
            Counter::QueueExpired => "Drawn delays past the horizon, never enqueued",
            Counter::QueueHeapCrossings => "Linear-to-heap regime crossings of the indexed queue",
            Counter::QueueDepthHighWater => "High-water mark of simultaneously queued events",
            Counter::RngExpDraws => "Exponential delay draws",
            Counter::RngUniformDraws => "Uniform draws (winner picks, splitting clones)",
            Counter::RngLifetimeDraws => "Lifetime-model draws (any failure distribution)",
            Counter::JumpOpToExp => "Fig. 2 transitions OP to EXP (disk failure)",
            Counter::JumpExpToOp => "Fig. 2 transitions EXP to OP (successful repair)",
            Counter::JumpExpToDu => "Fig. 2 transitions EXP to DU (wrong replacement)",
            Counter::JumpExpToDl => "Fig. 2 transitions EXP to DL (second disk failure)",
            Counter::JumpDuToOp => "Fig. 2 transitions DU to OP (human-error recovery)",
            Counter::JumpDuToDl => "Fig. 2 transitions DU to DL (removed-disk crash)",
            Counter::JumpDlToOp => "Fig. 2 transitions DL to OP (restore from backup)",
            Counter::JumpTransitions => "Jump-chain transitions over all engines and edges",
            Counter::FleetCrewWaits => "Fleet arrays that waited for a repair crew",
            Counter::FleetDomainStrikes => "Fleet domain (whole-shelf) knockout strikes",
            Counter::FleetFailovers => "Fleet arrays admitted to the shared DR site",
            Counter::FleetDrQueueWaits => "Fleet arrays that queued for a full DR site",
            Counter::FleetDrRejections => "Fleet arrays rejected by a full DR site (loss policy)",
            Counter::FleetFailbacks => "Fleet arrays switched back from DR to primary",
            Counter::SplitStage1Survivors => "Splitting missions reaching a first failure",
            Counter::SplitStage2Survivors => "Splitting clones reaching a down state",
            Counter::RebuildLseHits => "Rebuilds that hit a latent sector error (data loss)",
            Counter::DataLossEvents => "Data-loss (DL) entries across all engines",
            Counter::ServeRequests => "HTTP requests received by availsim serve",
            Counter::ServeCacheHits => "Serve queries answered from the result cache",
            Counter::ServeSheds => "Serve requests shed by admission control",
            Counter::ServeDeadlineExpiries => "Serve jobs that expired at their deadline",
            Counter::ServeQueueDepthHighWater => "High-water mark of queued serve jobs",
        }
    }

    /// How the counter merges across block snapshots.
    pub fn merge_kind(self) -> MergeKind {
        match self {
            Counter::QueueDepthHighWater | Counter::ServeQueueDepthHighWater => MergeKind::Max,
            _ => MergeKind::Sum,
        }
    }
}

/// Per-worker counter registry, one cache line, mask-gated.
///
/// `mask` is `u64::MAX` when enabled and `0` when disabled, so every
/// update compiles to an unconditional `counts[i] += n & mask` — no
/// branch, no measurable cost when disabled. The registry is
/// `#[repr(align(64))]` so two workers' registries never share a cache
/// line.
#[derive(Debug, Clone)]
#[repr(align(64))]
pub struct Telemetry {
    mask: u64,
    counts: [u64; COUNTERS],
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(false)
    }
}

impl Telemetry {
    /// Creates a registry, enabled or disabled for its whole lifetime.
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            mask: if enabled { u64::MAX } else { 0 },
            counts: [0; COUNTERS],
        }
    }

    /// Whether updates are recorded.
    pub fn enabled(&self) -> bool {
        self.mask != 0
    }

    /// Increments a counter by one (no-op when disabled).
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counts[c as usize] += n & self.mask;
    }

    /// Raises a high-water counter to `v` if larger (no-op when
    /// disabled).
    #[inline]
    pub fn record_max(&mut self, c: Counter, v: u64) {
        let slot = &mut self.counts[c as usize];
        *slot = (*slot).max(v & self.mask);
    }

    /// Drains the registry into a snapshot, resetting every counter.
    pub fn take(&mut self) -> CounterSnapshot {
        let snap = CounterSnapshot {
            counts: self.counts,
        };
        self.counts = [0; COUNTERS];
        snap
    }
}

/// An immutable, mergeable snapshot of the counter registry.
///
/// Snapshots merge associatively (sum / max per [`Counter::merge_kind`]),
/// so folding per-block snapshots **in block order** yields the same
/// bytes at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    counts: [u64; COUNTERS],
}

// Manual impl: the std `Default` derive for arrays stops at 32 elements.
impl Default for CounterSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; COUNTERS],
        }
    }
}

impl CounterSnapshot {
    /// The value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counts[c as usize]
    }

    /// Adds `n` to a counter (snapshots are not mask-gated).
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counts[c as usize] += n;
    }

    /// Raises a high-water counter to `v` if larger.
    pub fn record_max(&mut self, c: Counter, v: u64) {
        let slot = &mut self.counts[c as usize];
        *slot = (*slot).max(v);
    }

    /// Folds another snapshot in: sum for flow counters, max for
    /// high-water marks.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for c in Counter::ALL {
            let i = c as usize;
            match c.merge_kind() {
                MergeKind::Sum => self.counts[i] += other.counts[i],
                MergeKind::Max => self.counts[i] = self.counts[i].max(other.counts[i]),
            }
        }
    }

    /// Whether every counter is zero (a disabled run's snapshot).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&v| v == 0)
    }

    /// All `(counter, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

/// Wall-clock phase spans (`plan` / `run` / `report`), microseconds.
///
/// Spans are **nondeterministic** by nature and must never be merged
/// into a [`CounterSnapshot`]; exposition surfaces keep them in a
/// clearly-marked nondeterministic section.
#[derive(Debug, Clone, Default)]
pub struct PhaseSpans {
    spans: Vec<(&'static str, u64)>,
}

impl PhaseSpans {
    /// Creates an empty span log.
    pub fn new() -> Self {
        PhaseSpans::default()
    }

    /// Records one completed phase.
    pub fn record(&mut self, phase: &'static str, micros: u64) {
        self.spans.push((phase, micros));
    }

    /// The recorded `(phase, micros)` pairs, in recording order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.spans.iter().copied()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; `p` is in
/// `[0, 100]`. Returns 0 for an empty slice.
pub fn percentile_u64(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Prometheus text-exposition writer (format 0.0.4): `# HELP` / `# TYPE`
/// headers plus one sample line per metric, in insertion order.
#[derive(Debug, Default)]
pub struct PrometheusWriter {
    out: String,
}

impl PrometheusWriter {
    /// Creates an empty exposition.
    pub fn new() -> Self {
        PrometheusWriter::default()
    }

    /// Emits a comment line (section markers).
    pub fn comment(&mut self, text: &str) {
        self.out.push_str("# ");
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Emits one integer metric with HELP/TYPE headers.
    pub fn metric_u64(&mut self, name: &str, help: &str, kind: &str, value: u64) {
        self.header(name, help, kind);
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Emits one gauge with HELP/TYPE headers. `value` must be finite.
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        assert!(value.is_finite(), "prometheus gauge {name} is not finite");
        self.header(name, help, "gauge");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&format!("{value:?}"));
        self.out.push('\n');
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// The exposition text (newline-terminated if non-empty).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Writes every registry counter into a Prometheus exposition, in
/// [`Counter::ALL`] order (high-water marks as gauges, the rest as
/// counters).
pub fn write_counters(w: &mut PrometheusWriter, snap: &CounterSnapshot) {
    for (c, value) in snap.iter() {
        let kind = match c.merge_kind() {
            MergeKind::Sum => "counter",
            MergeKind::Max => "gauge",
        };
        w.metric_u64(c.name(), c.help(), kind, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut tele = Telemetry::new(false);
        assert!(!tele.enabled());
        tele.bump(Counter::Missions);
        tele.add(Counter::RngExpDraws, 1_000);
        tele.record_max(Counter::QueueDepthHighWater, 77);
        assert!(tele.take().is_empty());
    }

    #[test]
    fn enabled_registry_counts_and_take_resets() {
        let mut tele = Telemetry::new(true);
        assert!(tele.enabled());
        tele.bump(Counter::Missions);
        tele.bump(Counter::Missions);
        tele.record_max(Counter::QueueDepthHighWater, 5);
        tele.record_max(Counter::QueueDepthHighWater, 3);
        let snap = tele.take();
        assert_eq!(snap.get(Counter::Missions), 2);
        assert_eq!(snap.get(Counter::QueueDepthHighWater), 5);
        assert!(tele.take().is_empty());
    }

    #[test]
    fn merge_sums_flows_and_maxes_high_water() {
        let mut a = CounterSnapshot::default();
        a.add(Counter::QueueScheduled, 10);
        a.record_max(Counter::QueueDepthHighWater, 4);
        let mut b = CounterSnapshot::default();
        b.add(Counter::QueueScheduled, 5);
        b.record_max(Counter::QueueDepthHighWater, 9);
        let mut merged = CounterSnapshot::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.get(Counter::QueueScheduled), 15);
        assert_eq!(merged.get(Counter::QueueDepthHighWater), 9);
    }

    #[test]
    fn merge_is_order_independent() {
        // The block fold must not depend on which worker produced which
        // snapshot — sum and max are commutative and associative.
        let mut a = CounterSnapshot::default();
        a.add(Counter::JumpTransitions, 3);
        a.record_max(Counter::QueueDepthHighWater, 2);
        let mut b = CounterSnapshot::default();
        b.add(Counter::JumpTransitions, 8);
        b.record_max(Counter::QueueDepthHighWater, 6);
        let mut ab = CounterSnapshot::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = CounterSnapshot::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn counter_metadata_is_total_and_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), COUNTERS);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTERS, "duplicate metric name");
        for c in Counter::ALL {
            assert!(c.name().starts_with("availsim_"));
            assert!(!c.help().is_empty());
            assert!(!c.layer().is_empty());
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_u64(&[], 50.0), 0);
        let one = [42];
        assert_eq!(percentile_u64(&one, 0.0), 42);
        assert_eq!(percentile_u64(&one, 100.0), 42);
        let v = [10, 20, 30, 40];
        assert_eq!(percentile_u64(&v, 50.0), 20);
        assert_eq!(percentile_u64(&v, 90.0), 40);
        assert_eq!(percentile_u64(&v, 100.0), 40);
        assert_eq!(percentile_u64(&v, 25.0), 10);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut snap = CounterSnapshot::default();
        snap.add(Counter::Missions, 7);
        snap.record_max(Counter::QueueDepthHighWater, 3);
        let mut w = PrometheusWriter::new();
        write_counters(&mut w, &snap);
        w.comment("nondeterministic section below");
        w.gauge_f64("availsim_wall_micros", "Wall-clock runtime", 1234.0);
        let text = w.finish();
        assert!(text.contains("# HELP availsim_missions_total Simulated missions completed\n"));
        assert!(text.contains("# TYPE availsim_missions_total counter\n"));
        assert!(text.contains("\navailsim_missions_total 7\n"));
        assert!(text.contains("# TYPE availsim_queue_depth_high_water gauge\n"));
        assert!(text.contains("\navailsim_queue_depth_high_water 3\n"));
        assert!(text.contains("# nondeterministic section below\n"));
        assert!(text.contains("\navailsim_wall_micros 1234.0\n"));
        assert!(text.ends_with('\n'));
        // Every line is a comment or a `name value` sample.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn serve_counter_group_exposes_and_merges_like_its_layer_mates() {
        // The serve layer rides the same registry contracts as the
        // engines: flows sum, the queue high-water maxes, and every name
        // reaches the exposition with the right TYPE.
        let mut a = CounterSnapshot::default();
        a.add(Counter::ServeRequests, 10);
        a.add(Counter::ServeSheds, 2);
        a.record_max(Counter::ServeQueueDepthHighWater, 4);
        let mut b = CounterSnapshot::default();
        b.add(Counter::ServeRequests, 5);
        b.add(Counter::ServeCacheHits, 3);
        b.record_max(Counter::ServeQueueDepthHighWater, 9);
        let mut merged = CounterSnapshot::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.get(Counter::ServeRequests), 15);
        assert_eq!(merged.get(Counter::ServeSheds), 2);
        assert_eq!(merged.get(Counter::ServeCacheHits), 3);
        assert_eq!(merged.get(Counter::ServeQueueDepthHighWater), 9);

        let mut w = PrometheusWriter::new();
        write_counters(&mut w, &merged);
        let text = w.finish();
        for c in [
            Counter::ServeRequests,
            Counter::ServeCacheHits,
            Counter::ServeSheds,
            Counter::ServeDeadlineExpiries,
        ] {
            assert_eq!(c.layer(), "serve");
            assert!(
                text.contains(&format!("# TYPE {} counter\n", c.name())),
                "{text}"
            );
        }
        assert_eq!(Counter::ServeQueueDepthHighWater.layer(), "serve");
        assert!(
            text.contains("# TYPE availsim_serve_queue_depth_high_water gauge\n"),
            "{text}"
        );
        assert!(
            text.contains("\navailsim_serve_requests_total 15\n"),
            "{text}"
        );
        assert!(
            text.contains("\navailsim_serve_queue_depth_high_water 9\n"),
            "{text}"
        );
    }

    #[test]
    fn phase_spans_record_in_order() {
        let mut spans = PhaseSpans::new();
        assert!(spans.is_empty());
        spans.record("plan", 10);
        spans.record("run", 900);
        spans.record("report", 5);
        let got: Vec<_> = spans.iter().collect();
        assert_eq!(got, vec![("plan", 10), ("run", 900), ("report", 5)]);
    }
}
