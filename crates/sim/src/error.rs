//! Error types for the simulation crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing distributions or running analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A distribution parameter was out of its domain.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint that was violated.
        constraint: &'static str,
    },
    /// A statistical routine was asked for a result it cannot produce
    /// (e.g. a confidence interval from fewer than two samples).
    InsufficientData {
        /// How many observations are required.
        needed: usize,
        /// How many were available.
        available: usize,
    },
    /// A numeric routine failed to converge.
    NoConvergence(&'static str),
    /// A probability argument was outside `(0, 1)`.
    InvalidProbability(f64),
    /// The simulation horizon or configuration was invalid.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "parameter `{name}` = {value} violates: {constraint}")
            }
            SimError::InsufficientData { needed, available } => {
                write!(
                    f,
                    "insufficient data: need {needed} observations, have {available}"
                )
            }
            SimError::NoConvergence(what) => write!(f, "no convergence in {what}"),
            SimError::InvalidProbability(p) => {
                write!(f, "probability {p} outside the open interval (0, 1)")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::InvalidParameter {
            name: "shape",
            value: -1.0,
            constraint: "shape > 0",
        };
        assert!(e.to_string().contains("shape"));
        let e = SimError::InsufficientData {
            needed: 2,
            available: 1,
        };
        assert!(e.to_string().contains("need 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<SimError>();
    }
}
