//! # availsim-sim
//!
//! Discrete-event Monte-Carlo simulation kernel for availability studies:
//!
//! * [`rng`] — deterministic xoshiro256++ PRNG with substream derivation for
//!   parallel, bit-reproducible experiments.
//! * [`distributions`] — exponential, Weibull, lognormal, gamma, uniform,
//!   deterministic, and empirical lifetime models, all with exact CDFs and
//!   quantiles.
//! * [`engine`] — a time-ordered event queue with FIFO tie-breaking and
//!   lazy (tombstone) cancellation, kept as the reference implementation.
//! * [`indexed_queue`] — the hot-path event queue: a flat 4-ary indexed
//!   min-heap with O(log n) in-place cancellation and no per-operation
//!   hashing, pop-order-identical to [`engine::EventQueue`].
//! * [`stats`] — Welford accumulators, Student-t confidence intervals (the
//!   paper's "t-student coefficient" machinery), batch means, histograms,
//!   and goodness-of-fit tests.
//! * [`rare_event`] — importance sampling with likelihood-ratio weights and
//!   effective-sample-size diagnostics for the 1e-10 unavailability regime.
//! * [`telemetry`] — deterministic engine counters (mask-gated, block-merged
//!   in worker-count-independent order), phase spans, and Prometheus text
//!   exposition.
//!
//! # Examples
//!
//! Estimating the mean of an exponential with a 99% confidence interval:
//!
//! ```
//! use availsim_sim::distributions::{Exponential, Lifetime};
//! use availsim_sim::rng::SimRng;
//! use availsim_sim::stats::{t_interval, RunningStats};
//!
//! # fn main() -> Result<(), availsim_sim::SimError> {
//! let dist = Exponential::from_mean(10.0)?;
//! let mut rng = SimRng::seed_from(7);
//! let mut stats = RunningStats::new();
//! for _ in 0..10_000 {
//!     stats.push(dist.sample(&mut rng));
//! }
//! let ci = t_interval(&stats, 0.99)?;
//! assert!(ci.contains(10.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod engine;
mod error;
pub mod indexed_queue;
pub mod parallel;
pub mod rare_event;
pub mod rng;
pub mod stats;
pub mod telemetry;

pub use distributions::Lifetime;
pub use engine::{EventHandle, EventQueue};
pub use error::{Result, SimError};
pub use indexed_queue::{IndexedEventHandle, IndexedEventQueue, QueueStats};
pub use rng::SimRng;
