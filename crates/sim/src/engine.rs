//! Discrete-event simulation core: a time-ordered event queue with stable
//! FIFO tie-breaking and O(log n) cancellation.

use crate::error::{Result, SimError};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle returned by [`EventQueue::schedule`], usable to cancel the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap semantics via reversed comparison; earlier time first,
        // then FIFO by sequence number. Times are validated non-NaN on entry.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are validated to be non-NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue parameterized over the event payload type.
///
/// # Examples
///
/// ```
/// use availsim_sim::engine::EventQueue;
///
/// # fn main() -> Result<(), availsim_sim::SimError> {
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(10.0, "disk-failure")?;
/// q.schedule(2.0, "scrub")?;
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (2.0, "scrub"));
/// assert_eq!(q.now(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    /// Sequence numbers currently pending (scheduled, not yet popped or
    /// cancelled) — the authority for [`Self::cancel`]'s return value, so
    /// a handle whose event was already *popped* is correctly refused
    /// instead of planting a tombstone for an absent entry (which would
    /// corrupt [`Self::len`]).
    pending: HashSet<u64>,
    next_seq: u64,
    /// First sequence number issued after the most recent [`Self::clear`];
    /// handles below it are stale and rejected by [`Self::cancel`].
    first_live_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            next_seq: 0,
            first_live_seq: 0,
            now: 0.0,
        }
    }

    /// Creates an empty queue at time zero with room for `n` pending events
    /// before the heap reallocates.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            cancelled: HashSet::with_capacity(n),
            pending: HashSet::with_capacity(n),
            next_seq: 0,
            first_live_seq: 0,
            now: 0.0,
        }
    }

    /// Resets the queue to an empty state at time zero while **retaining**
    /// the heap's and the cancellation set's allocated capacity. This is the
    /// hot-loop reset used by simulators that replay many missions on one
    /// queue without per-mission allocations.
    ///
    /// Handles issued before the reset are invalidated: the lazy
    /// cancellation set is emptied, and sequence numbers keep growing across
    /// resets, so a stale [`EventHandle`] is rejected by [`Self::cancel`]
    /// (returns `false`) and can never cancel, or be mistaken for, an event
    /// scheduled after `clear()`. [`Self::len`] and [`Self::peek_time`]
    /// therefore stay exact under lazy cancellation after any number of
    /// reuse cycles: `len()` counts only live post-reset events and
    /// `peek_time()` never reports a pre-reset entry.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.pending.clear();
        self.first_live_seq = self.next_seq;
        self.now = 0.0;
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules an event `delay` time units from now.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for negative or NaN delays.
    pub fn schedule(&mut self, delay: f64, event: E) -> Result<EventHandle> {
        if delay < 0.0 || !delay.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "invalid event delay {delay}"
            )));
        }
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules an event at an absolute time, which must not lie in the
    /// past.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for times before `now` or NaN.
    pub fn schedule_at(&mut self, time: f64, event: E) -> Result<EventHandle> {
        if time < self.now || !time.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "event time {time} is before current time {}",
                self.now
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Scheduled { time, seq, event });
        Ok(EventHandle(seq))
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending; a handle whose event was already popped, already
    /// cancelled, or scheduled before the last [`Self::clear`] returns
    /// `false` and changes nothing.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 < self.first_live_seq || !self.pending.remove(&handle.0) {
            return false;
        }
        // Only mark: the heap entry is skipped lazily on pop.
        self.cancelled.insert(handle.0)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.pending.remove(&s.seq);
            self.now = s.time;
            return Some((s.time, s.event));
        }
        None
    }

    /// Timestamp of the next pending event without removing it.
    pub fn peek_time(&mut self) -> Option<f64> {
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let seq = s.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(s.time);
        }
        None
    }

    /// Drains events in order up to (and including) `horizon`, calling the
    /// handler with `(time, event)`. Events scheduled by the handler are
    /// processed too if they fall within the horizon. Returns the number of
    /// events processed.
    ///
    /// # Errors
    /// Propagates errors from the handler.
    pub fn run_until<F>(&mut self, horizon: f64, mut handler: F) -> Result<usize>
    where
        F: FnMut(&mut Self, f64, E) -> Result<()>,
    {
        let mut processed = 0;
        loop {
            match self.peek_time() {
                Some(t) if t <= horizon => {
                    let (time, event) = self.pop().expect("peeked event exists");
                    handler(self, time, event)?;
                    processed += 1;
                }
                _ => break,
            }
        }
        self.now = self.now.max(horizon);
        Ok(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c").unwrap();
        q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        assert_eq!(q.pop().unwrap(), (1.0, "a"));
        assert_eq!(q.pop().unwrap(), (2.0, "b"));
        assert_eq!(q.pop().unwrap(), (3.0, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first").unwrap();
        q.schedule(1.0, "second").unwrap();
        q.schedule(1.0, "third").unwrap();
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ()).unwrap();
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        // Relative scheduling now measures from 5.0.
        q.schedule(1.0, ()).unwrap();
        assert_eq!(q.pop().unwrap().0, 6.0);
    }

    #[test]
    fn rejects_bad_times() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.schedule(-1.0, ()).is_err());
        assert!(q.schedule(f64::NAN, ()).is_err());
        assert!(q.schedule(f64::INFINITY, ()).is_err());
        q.schedule(10.0, ()).unwrap();
        q.pop();
        assert!(q.schedule_at(5.0, ()).is_err());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_of_a_popped_handle_is_refused_and_len_stays_exact() {
        // Regression: cancelling a handle whose event already popped used
        // to plant a tombstone for an absent heap entry, underflowing
        // `len()` on the next schedule.
        let mut q = EventQueue::new();
        let h = q.schedule(1.0, "a").unwrap();
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(h), "popped handle must not cancel");
        q.schedule(2.0, "b").unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    fn run_until_processes_and_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1u32).unwrap();
        q.schedule(2.0, 2).unwrap();
        q.schedule(10.0, 3).unwrap();
        let mut seen = Vec::new();
        let n = q
            .run_until(5.0, |q, t, e| {
                seen.push((t, e));
                if e == 1 {
                    // Handler-scheduled event inside horizon is processed.
                    q.schedule(0.5, 4)?;
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(seen, vec![(1.0, 1), (1.5, 4), (2.0, 2)]);
        assert_eq!(q.now(), 5.0);
        assert_eq!(q.len(), 1); // event at t=10 still pending
    }

    #[test]
    fn run_until_propagates_handler_errors() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ()).unwrap();
        let err = q.run_until(2.0, |_, _, _| Err(SimError::InvalidConfig("boom".into())));
        assert!(err.is_err());
    }

    #[test]
    fn clear_resets_clock_events_and_capacity_survives() {
        let mut q = EventQueue::with_capacity(8);
        q.schedule(5.0, "a").unwrap();
        q.schedule(7.0, "b").unwrap();
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.clear();
        assert_eq!(q.now(), 0.0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        // Relative scheduling measures from the reset clock.
        q.schedule(1.0, "c").unwrap();
        assert_eq!(q.pop().unwrap(), (1.0, "c"));
    }

    #[test]
    fn clear_purges_lazy_cancellations_and_rejects_stale_handles() {
        let mut q = EventQueue::new();
        let stale = q.schedule(1.0, "old").unwrap();
        q.schedule(2.0, "old2").unwrap();
        q.cancel(stale); // lazily marked, never popped
        q.clear();
        // len()/peek_time() are exact after reuse: the pending cancellation
        // must not leak into the new mission.
        let h = q.schedule(3.0, "new").unwrap();
        q.schedule(4.0, "new2").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3.0));
        // A handle from before the reset can neither cancel nor alias a
        // post-reset event.
        assert!(!q.cancel(stale));
        assert_eq!(q.len(), 2);
        // Post-reset handles still cancel normally.
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.pop().unwrap().1, "new2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn reuse_cycles_keep_fifo_ties_and_counts() {
        let mut q = EventQueue::new();
        for _ in 0..3 {
            q.schedule(1.0, "first").unwrap();
            q.schedule(1.0, "second").unwrap();
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop().unwrap().1, "first");
            assert_eq!(q.pop().unwrap().1, "second");
            q.clear();
        }
    }

    #[test]
    fn many_events_stay_sorted() {
        let mut q = EventQueue::new();
        // Insert times in a scrambled deterministic order.
        for i in 0..1000u64 {
            let t = ((i * 7919) % 1000) as f64;
            q.schedule_at(t, i).unwrap();
        }
        let mut prev = -1.0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
        }
    }
}
