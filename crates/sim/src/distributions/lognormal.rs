//! Lognormal distribution — a common model for repair and service times.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;
use crate::stats::special::{normal_cdf, normal_quantile};

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the location and scale of `ln X`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless `sigma > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(SimError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "mu must be finite",
            });
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "sigma must be positive and finite",
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates the distribution matching a target mean and coefficient of
    /// variation (`cv = std/mean`), a convenient parameterization for repair
    /// times quoted as "10 hours ± 50%".
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] for non-positive inputs.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "mean must be positive and finite",
            });
        }
        if !(cv.is_finite() && cv > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "cv",
                value: cv,
                constraint: "cv must be positive and finite",
            });
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Location of `ln X`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale of `ln X`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Lifetime for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.next_standard_normal()).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        Ok((self.mu + self.sigma * normal_quantile(p)?).exp())
    }

    fn name(&self) -> String {
        format!("LogNormal(mu={}, sigma={})", self.mu, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::check_distribution;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::from_mean_cv(0.0, 1.0).is_err());
        assert!(LogNormal::from_mean_cv(1.0, 0.0).is_err());
    }

    #[test]
    fn moments_and_quantiles() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        check_distribution(&d, 777, 200_000, 0.02);
    }

    #[test]
    fn from_mean_cv_matches_target() {
        let d = LogNormal::from_mean_cv(10.0, 0.5).unwrap();
        assert!((d.mean() - 10.0).abs() < 1e-10);
        let cv = d.variance().sqrt() / d.mean();
        assert!((cv - 0.5).abs() < 1e-10);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(2.0, 0.8).unwrap();
        assert!((d.quantile(0.5).unwrap() - 2.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn cdf_zero_below_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(-5.0), 0.0);
    }
}
