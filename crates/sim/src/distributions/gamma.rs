//! Gamma distribution, sampled with the Marsaglia–Tsang squeeze method.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;
use crate::stats::special::reg_gamma_lower;

/// Gamma distribution with shape `k` and rate `θ⁻¹` (mean `k/rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates the distribution from shape and rate.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless both are positive and
    /// finite.
    pub fn new(shape: f64, rate: f64) -> Result<Self> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "shape must be positive and finite",
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "rate must be positive and finite",
            });
        }
        Ok(Gamma { shape, rate })
    }

    /// An Erlang distribution: sum of `stages` exponentials of rate `rate`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] for zero stages or non-positive
    /// rate.
    pub fn erlang(stages: u32, rate: f64) -> Result<Self> {
        if stages == 0 {
            return Err(SimError::InvalidParameter {
                name: "stages",
                value: 0.0,
                constraint: "stages must be at least 1",
            });
        }
        Gamma::new(stages as f64, rate)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn sample_standard(&self, rng: &mut SimRng, shape: f64) -> f64 {
        // Marsaglia & Tsang (2000) for shape >= 1.
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.next_standard_normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_open_f64();
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Lifetime for Gamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.shape >= 1.0 {
            self.sample_standard(rng, self.shape) / self.rate
        } else {
            // Boost: X(k) = X(k+1) · U^{1/k}.
            let g = self.sample_standard(rng, self.shape + 1.0);
            let u = rng.next_open_f64();
            g * u.powf(1.0 / self.shape) / self.rate
        }
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_lower(self.shape, self.rate * x).unwrap_or(1.0)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        // Bisection on the CDF (monotone, robust; speed is irrelevant here).
        let mut lo = 0.0f64;
        let mut hi = self.mean() + 10.0 * self.variance().sqrt() + 1.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            if !hi.is_finite() {
                return Err(SimError::NoConvergence("gamma quantile bracketing"));
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) < 1e-12 * hi.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    fn name(&self) -> String {
        format!("Gamma(shape={}, rate={})", self.shape, self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::check_distribution;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(Gamma::erlang(0, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 0.5).unwrap();
        for &x in &[0.5f64, 2.0, 10.0] {
            let expect = 1.0 - (-0.5 * x).exp();
            assert!((g.cdf(x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn moments_and_quantiles_shape_above_one() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        check_distribution(&g, 31, 200_000, 0.02);
    }

    #[test]
    fn moments_and_quantiles_shape_below_one() {
        let g = Gamma::new(0.5, 1.0).unwrap();
        check_distribution(&g, 37, 200_000, 0.03);
    }

    #[test]
    fn erlang_is_sum_of_exponentials() {
        // Mean of Erlang(3, 0.1) = 30.
        let g = Gamma::erlang(3, 0.1).unwrap();
        assert!((g.mean() - 30.0).abs() < 1e-12);
        assert!((g.variance() - 300.0).abs() < 1e-9);
    }
}
