//! Uniform distribution over a nonnegative interval.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;

/// Uniform distribution on `[lo, hi)` with `0 <= lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDist {
    lo: f64,
    hi: f64,
}

impl UniformDist {
    /// Creates the distribution.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless `0 <= lo < hi` and both
    /// are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && lo >= 0.0) {
            return Err(SimError::InvalidParameter {
                name: "lo",
                value: lo,
                constraint: "lo must be finite and nonnegative",
            });
        }
        if !(hi.is_finite() && hi > lo) {
            return Err(SimError::InvalidParameter {
                name: "hi",
                value: hi,
                constraint: "hi must be finite and greater than lo",
            });
        }
        Ok(UniformDist { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Lifetime for UniformDist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        Ok(self.lo + p * (self.hi - self.lo))
    }

    fn name(&self) -> String {
        format!("Uniform([{}, {}))", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::check_distribution;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(UniformDist::new(-1.0, 1.0).is_err());
        assert!(UniformDist::new(1.0, 1.0).is_err());
        assert!(UniformDist::new(2.0, 1.0).is_err());
        assert!(UniformDist::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn moments_and_quantiles() {
        let d = UniformDist::new(2.0, 8.0).unwrap();
        check_distribution(&d, 5, 100_000, 0.01);
    }

    #[test]
    fn samples_stay_in_range() {
        let d = UniformDist::new(1.0, 3.0).unwrap();
        let mut rng = SimRng::seed_from(8);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..3.0).contains(&x));
        }
    }
}
