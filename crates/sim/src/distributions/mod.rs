//! Lifetime distributions for failure and repair processes.
//!
//! Every distribution implements [`Lifetime`], which exposes exact
//! inverse-CDF sampling (where available), the CDF, the quantile function,
//! and moments. The set covers what the paper needs — exponential for the
//! Markov-comparable runs and Weibull for the field-data runs (Schroeder &
//! Gibson, FAST'07) — plus lognormal, gamma, uniform, deterministic, and
//! empirical distributions commonly used for repair times.

mod deterministic;
mod empirical;
mod exponential;
mod gamma;
mod lognormal;
mod uniform;
mod weibull;

pub use deterministic::Deterministic;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use uniform::UniformDist;
pub use weibull::Weibull;

use crate::error::Result;
use crate::rng::SimRng;
use std::fmt;

/// A nonnegative continuous distribution modeling a time-to-event.
///
/// Implementors must return samples in `[0, ∞)`.
pub trait Lifetime: fmt::Debug + Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The mean of the distribution.
    fn mean(&self) -> f64;

    /// The variance of the distribution.
    fn variance(&self) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p ∈ (0, 1)`.
    ///
    /// # Errors
    /// Returns [`crate::SimError::InvalidProbability`] for `p` outside `(0,1)`.
    fn quantile(&self, p: f64) -> Result<f64>;

    /// A human-readable name for reports.
    fn name(&self) -> String;
}

/// Draws `n` samples into a vector (test and harness convenience).
pub fn sample_n(dist: &dyn Lifetime, rng: &mut SimRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| dist.sample(rng)).collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Shared sanity harness: sampled moments track analytic moments and the
    /// quantile function inverts the CDF.
    pub fn check_distribution(dist: &dyn Lifetime, seed: u64, n: usize, rel_tol: f64) {
        let mut rng = SimRng::seed_from(seed);
        let samples = sample_n(dist, &mut rng, n);
        assert!(
            samples.iter().all(|&x| x >= 0.0 && x.is_finite()),
            "negative/NaN sample"
        );

        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let expect = dist.mean();
        let tol = rel_tol * expect.max(1e-12) + 4.0 * (dist.variance() / n as f64).sqrt();
        assert!(
            (mean - expect).abs() < tol,
            "{}: sample mean {mean} vs analytic {expect} (tol {tol})",
            dist.name()
        );

        for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            let x = dist.quantile(p).unwrap();
            let c = dist.cdf(x);
            assert!((c - p).abs() < 1e-6, "{}: cdf(q({p})) = {c}", dist.name());
        }
        assert!(dist.quantile(0.0).is_err());
        assert!(dist.quantile(1.0).is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_are_usable() {
        let dists: Vec<Box<dyn Lifetime>> = vec![
            Box::new(Exponential::new(0.5).unwrap()),
            Box::new(Weibull::new(2.0, 1.5).unwrap()),
            Box::new(Deterministic::new(3.0).unwrap()),
        ];
        let mut rng = SimRng::seed_from(1);
        for d in &dists {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0);
            assert!(!d.name().is_empty());
        }
    }

    #[test]
    fn sample_n_has_requested_length() {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(2);
        assert_eq!(sample_n(&d, &mut rng, 17).len(), 17);
    }
}
