//! Degenerate (point-mass) distribution, useful for fixed rebuild times.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;

/// A distribution that always returns the same value (e.g. a contractual
/// 10-hour rebuild).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates the point mass at `value`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless `value` is finite and
    /// nonnegative.
    pub fn new(value: f64) -> Result<Self> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(SimError::InvalidParameter {
                name: "value",
                value,
                constraint: "value must be finite and nonnegative",
            });
        }
        Ok(Deterministic { value })
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Lifetime for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        Ok(self.value)
    }

    fn name(&self) -> String {
        format!("Deterministic({})", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_returns_value() {
        let d = Deterministic::new(10.0).unwrap();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 10.0);
        }
        assert_eq!(d.mean(), 10.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn cdf_is_step_function() {
        let d = Deterministic::new(5.0).unwrap();
        assert_eq!(d.cdf(4.999), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn zero_is_allowed_but_negative_is_not() {
        assert!(Deterministic::new(0.0).is_ok());
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
    }
}
