//! Weibull distribution — the field-realistic disk lifetime model.
//!
//! Schroeder & Gibson (FAST'07) report that disk replacement inter-arrivals
//! are better described by a Weibull with shape `β ∈ [1.0, 1.5]` (increasing
//! hazard) than by the exponential that Markov models assume. The paper's
//! Fig. 5 sweeps four such fits; [`Weibull::from_rate_shape`] accepts the
//! paper's "(failure rate, beta)" parameterization where the characteristic
//! life is the reciprocal of the quoted rate.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;
use crate::stats::special::ln_gamma;

/// Weibull distribution with scale `η` (characteristic life) and shape `β`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates the distribution from scale (characteristic life) and shape.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless both are positive and
    /// finite.
    pub fn new(scale: f64, shape: f64) -> Result<Self> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "scale must be positive and finite",
            });
        }
        if !(shape.is_finite() && shape > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "shape must be positive and finite",
            });
        }
        Ok(Weibull { scale, shape })
    }

    /// Creates the distribution from the paper's `(rate, beta)` pairs:
    /// `η = 1/rate`, `β = shape`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] for non-positive parameters.
    pub fn from_rate_shape(rate: f64, shape: f64) -> Result<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "rate must be positive and finite",
            });
        }
        Weibull::new(1.0 / rate, shape)
    }

    /// Scale parameter `η`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Shape parameter `β`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Instantaneous hazard rate `h(t) = (β/η)(t/η)^{β−1}`.
    ///
    /// For `β > 1` the hazard increases with age (wear-out); `β = 1` recovers
    /// the exponential's constant hazard.
    pub fn hazard(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if t == 0.0 {
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Less) => f64::INFINITY,
                Some(std::cmp::Ordering::Equal) => 1.0 / self.scale,
                _ => 0.0,
            };
        }
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }
}

impl Lifetime for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF: η · (−ln U)^{1/β}.
        self.scale * (-rng.next_open_f64().ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        Ok(self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape))
    }

    fn name(&self) -> String {
        format!("Weibull(scale={}, shape={})", self.scale, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::check_distribution;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(Weibull::new(1.0, f64::INFINITY).is_err());
        assert!(Weibull::from_rate_shape(0.0, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(10.0, 1.0).unwrap();
        assert!((w.mean() - 10.0).abs() < 1e-10);
        // CDF matches exponential with rate 1/10.
        for &x in &[1.0, 5.0, 20.0] {
            let expect = 1.0 - (-x / 10.0f64).exp();
            assert!((w.cdf(x) - expect).abs() < 1e-12);
        }
        assert!((w.hazard(3.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn moments_and_quantiles() {
        let w = Weibull::new(5.0, 1.5).unwrap();
        check_distribution(&w, 1234, 200_000, 0.01);
    }

    #[test]
    fn paper_parameterization() {
        // Paper Fig. 5 fits: (rate, beta) with η = 1/rate.
        let w = Weibull::from_rate_shape(1.25e-6, 1.09).unwrap();
        assert!((w.scale() - 8e5).abs() < 1.0);
        assert!((w.shape() - 1.09).abs() < 1e-12);
    }

    #[test]
    fn increasing_hazard_for_beta_above_one() {
        let w = Weibull::new(1e5, 1.5).unwrap();
        let h1 = w.hazard(1e4);
        let h2 = w.hazard(5e4);
        let h3 = w.hazard(2e5);
        assert!(h1 < h2 && h2 < h3, "hazard should increase: {h1} {h2} {h3}");
    }

    #[test]
    fn decreasing_hazard_for_beta_below_one() {
        let w = Weibull::new(1e5, 0.7).unwrap();
        assert!(w.hazard(1e3) > w.hazard(1e5));
        assert!(w.hazard(0.0).is_infinite());
    }

    #[test]
    fn weibull_mean_formula() {
        // mean = η Γ(1 + 1/β); for β=2, Γ(1.5) = √π/2.
        let w = Weibull::new(3.0, 2.0).unwrap();
        let expect = 3.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((w.mean() - expect).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(7.0, 1.21).unwrap();
        for &p in &[0.001, 0.37, 0.632, 0.99] {
            let x = w.quantile(p).unwrap();
            assert!((w.cdf(x) - p).abs() < 1e-12);
        }
        // Characteristic life: CDF(η) = 1 − 1/e.
        assert!((w.cdf(7.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }
}
