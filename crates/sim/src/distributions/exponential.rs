//! Exponential distribution — the memoryless workhorse of Markov-comparable
//! simulation.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// # Examples
///
/// ```
/// use availsim_sim::distributions::{Exponential, Lifetime};
///
/// # fn main() -> Result<(), availsim_sim::SimError> {
/// let d = Exponential::new(0.1)?; // mean 10 hours
/// assert!((d.mean() - 10.0).abs() < 1e-12);
/// assert!((d.cdf(10.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
    /// Cached `1/rate`: sampling multiplies instead of dividing.
    inv_rate: f64,
}

impl Exponential {
    /// Creates the distribution from its rate.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless `rate` is positive and
    /// finite.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "rate must be positive and finite",
            });
        }
        Ok(Exponential {
            rate,
            inv_rate: rate.recip(),
        })
    }

    /// Creates the distribution from its mean (`rate = 1/mean`).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParameter`] unless `mean` is positive and
    /// finite.
    pub fn from_mean(mean: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "mean must be positive and finite",
            });
        }
        Exponential::new(1.0 / mean)
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Lifetime for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF on an open uniform avoids ln(0); the division by
        // the rate is a cached-reciprocal multiply (hot path).
        -rng.next_open_f64().ln() * self.inv_rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        Ok(-(-p).ln_1p() / self.rate)
    }

    fn name(&self) -> String {
        format!("Exponential(rate={})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::check_distribution;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn from_mean_inverts_rate() {
        let d = Exponential::from_mean(20.0).unwrap();
        assert!((d.rate() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn moments_and_quantiles() {
        let d = Exponential::new(0.25).unwrap();
        check_distribution(&d, 42, 200_000, 0.01);
    }

    #[test]
    fn median_is_ln2_over_rate() {
        let d = Exponential::new(2.0).unwrap();
        let m = d.quantile(0.5).unwrap();
        assert!((m - std::f64::consts::LN_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn memorylessness_in_samples() {
        // P(X > s + t | X > s) = P(X > t): compare conditional tail counts.
        let d = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(9);
        let n = 400_000;
        let (mut beyond_s, mut beyond_st) = (0usize, 0usize);
        let (s, t) = (0.5, 0.7);
        let mut beyond_t = 0usize;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            if x > s {
                beyond_s += 1;
                if x > s + t {
                    beyond_st += 1;
                }
            }
            if x > t {
                beyond_t += 1;
            }
        }
        let conditional = beyond_st as f64 / beyond_s as f64;
        let unconditional = beyond_t as f64 / n as f64;
        assert!((conditional - unconditional).abs() < 0.01);
    }

    #[test]
    fn tiny_rates_sample_large_but_finite() {
        let d = Exponential::new(1e-7).unwrap();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
        }
    }
}
