//! Empirical distribution built from observed samples (e.g. field traces of
//! repair times), sampled by inverse transform on the empirical CDF.

use super::Lifetime;
use crate::error::{Result, SimError};
use crate::rng::SimRng;

/// Empirical distribution over a set of observed nonnegative values.
///
/// Sampling draws uniformly among the stored observations (with linear
/// interpolation between order statistics for the quantile function).
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Builds the distribution from observations.
    ///
    /// # Errors
    /// Returns [`SimError::InsufficientData`] for an empty input and
    /// [`SimError::InvalidParameter`] if any observation is negative or not
    /// finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(SimError::InsufficientData {
                needed: 1,
                available: 0,
            });
        }
        for &s in samples {
            if !(s.is_finite() && s >= 0.0) {
                return Err(SimError::InvalidParameter {
                    name: "sample",
                    value: s,
                    constraint: "samples must be finite and nonnegative",
                });
            }
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Ok(Empirical {
            sorted,
            mean,
            variance,
        })
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution holds no observations (never true after
    /// construction succeeds).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

impl Lifetime for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let i = rng.next_bounded(self.sorted.len() as u64) as usize;
        self.sorted[i]
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn cdf(&self, x: f64) -> f64 {
        // Right-continuous step ECDF.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    fn quantile(&self, p: f64) -> Result<f64> {
        if p <= 0.0 || p >= 1.0 {
            return Err(SimError::InvalidProbability(p));
        }
        let n = self.sorted.len();
        if n == 1 {
            return Ok(self.sorted[0]);
        }
        // Linear interpolation between order statistics (type-7 quantile).
        let h = p * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = h - lo as f64;
        Ok(self.sorted[lo] + frac * (self.sorted[hi] - self.sorted[lo]))
    }

    fn name(&self) -> String {
        format!("Empirical(n={})", self.sorted.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(Empirical::from_samples(&[]).is_err());
        assert!(Empirical::from_samples(&[1.0, -2.0]).is_err());
        assert!(Empirical::from_samples(&[f64::NAN]).is_err());
    }

    #[test]
    fn mean_and_variance_match_input() {
        let d = Empirical::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((d.mean() - 2.5).abs() < 1e-12);
        assert!((d.variance() - 1.25).abs() < 1e-12);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn samples_come_from_input_set() {
        let vals = [2.0, 7.0, 11.0];
        let d = Empirical::from_samples(&vals).unwrap();
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!(vals.contains(&x));
        }
    }

    #[test]
    fn ecdf_steps() {
        let d = Empirical::from_samples(&[1.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.25);
        assert_eq!(d.cdf(2.0), 0.75);
        assert_eq!(d.cdf(4.9), 0.75);
        assert_eq!(d.cdf(5.0), 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let d = Empirical::from_samples(&[0.0, 10.0]).unwrap();
        assert!((d.quantile(0.5).unwrap() - 5.0).abs() < 1e-12);
        assert!((d.quantile(0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_quantile() {
        let d = Empirical::from_samples(&[3.0]).unwrap();
        assert_eq!(d.quantile(0.9).unwrap(), 3.0);
    }
}
