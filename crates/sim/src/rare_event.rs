//! Rare-event estimation by importance sampling.
//!
//! Naive Monte-Carlo needs on the order of `100/p` iterations to resolve a
//! probability `p`; at the 1e-10 unavailabilities that well-provisioned RAID
//! systems reach, that is hopeless. Importance sampling draws from a
//! *proposal* distribution under which the rare event is common and corrects
//! each observation by the likelihood ratio `f(x)/g(x)`.
//!
//! This module provides the generic machinery: a [`Pdf`] extension trait for
//! the closed-form lifetime distributions, an [`ImportanceSampler`] pairing a
//! nominal and a proposal distribution, and [`WeightedStats`] for the
//! weighted estimator with effective-sample-size diagnostics.

use crate::distributions::{Exponential, Gamma, Lifetime, LogNormal, UniformDist, Weibull};
use crate::error::{Result, SimError};
use crate::rng::SimRng;
use crate::stats::special::ln_gamma;

/// A lifetime distribution with a tractable density, as required for
/// likelihood-ratio corrections.
pub trait Pdf: Lifetime {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x` (defaults to `ln(pdf)`).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }
}

impl Pdf for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate() * (-self.rate() * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate().ln() - self.rate() * x
        }
    }
}

impl Pdf for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape() == 1.0 {
                1.0 / self.scale()
            } else {
                0.0
            };
        }
        let z = x / self.scale();
        (self.shape() / self.scale()) * z.powf(self.shape() - 1.0) * (-z.powf(self.shape())).exp()
    }
}

impl Pdf for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu()) / self.sigma();
        (-0.5 * z * z).exp() / (x * self.sigma() * (2.0 * std::f64::consts::PI).sqrt())
    }
}

impl Pdf for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape() == 1.0 {
                self.rate()
            } else {
                0.0
            };
        }
        let ln = self.shape() * self.rate().ln() + (self.shape() - 1.0) * x.ln()
            - self.rate() * x
            - ln_gamma(self.shape());
        ln.exp()
    }
}

impl Pdf for UniformDist {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo() && x < self.hi() {
            1.0 / (self.hi() - self.lo())
        } else {
            0.0
        }
    }
}

/// Pairs a nominal distribution with a proposal; samples come from the
/// proposal together with the likelihood-ratio weight.
#[derive(Debug)]
pub struct ImportanceSampler<N, P> {
    nominal: N,
    proposal: P,
}

impl<N: Pdf, P: Pdf> ImportanceSampler<N, P> {
    /// Creates the sampler.
    pub fn new(nominal: N, proposal: P) -> Self {
        ImportanceSampler { nominal, proposal }
    }

    /// The nominal (true) distribution.
    pub fn nominal(&self) -> &N {
        &self.nominal
    }

    /// The proposal (sampling) distribution.
    pub fn proposal(&self) -> &P {
        &self.proposal
    }

    /// Draws `(x, w)` where `x ~ proposal` and `w = f(x)/g(x)`.
    pub fn sample(&self, rng: &mut SimRng) -> (f64, f64) {
        let x = self.proposal.sample(rng);
        let lnw = self.nominal.ln_pdf(x) - self.proposal.ln_pdf(x);
        (x, lnw.exp())
    }

    /// Estimates `P(X > threshold)` under the nominal distribution using `n`
    /// proposal draws.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for `n == 0`.
    pub fn estimate_tail(
        &self,
        rng: &mut SimRng,
        threshold: f64,
        n: usize,
    ) -> Result<WeightedStats> {
        if n == 0 {
            return Err(SimError::InvalidConfig("need at least one sample".into()));
        }
        let mut stats = WeightedStats::new();
        for _ in 0..n {
            let (x, w) = self.sample(rng);
            stats.push(if x > threshold { w } else { 0.0 });
        }
        Ok(stats)
    }
}

/// Statistics over importance-weighted observations.
#[derive(Debug, Clone, Default)]
pub struct WeightedStats {
    n: u64,
    sum: f64,
    sum_sq: f64,
    weight_sum: f64,
    weight_sq_sum: f64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one weighted observation (the product `w·h(x)`).
    pub fn push(&mut self, weighted_value: f64) {
        self.n += 1;
        self.sum += weighted_value;
        self.sum_sq += weighted_value * weighted_value;
        self.weight_sum += weighted_value.abs();
        self.weight_sq_sum += weighted_value * weighted_value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The unbiased importance-sampling estimate (sample mean of `w·h`).
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        let n = self.n as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0) * n / (n - 1.0);
        (var / n).sqrt()
    }

    /// Kish's effective sample size `(Σw)²/Σw²` — small values warn that a
    /// few huge weights dominate the estimate.
    pub fn effective_sample_size(&self) -> f64 {
        if self.weight_sq_sum == 0.0 {
            0.0
        } else {
            self.weight_sum * self.weight_sum / self.weight_sq_sum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_matches_numeric_cdf_derivative() {
        let dists: Vec<Box<dyn Pdf>> = vec![
            Box::new(Exponential::new(0.7).unwrap()),
            Box::new(Weibull::new(2.0, 1.3).unwrap()),
            Box::new(LogNormal::new(0.5, 0.6).unwrap()),
            Box::new(Gamma::new(2.5, 1.2).unwrap()),
            Box::new(UniformDist::new(0.5, 2.5).unwrap()),
        ];
        let h = 1e-6;
        for d in &dists {
            for &x in &[0.8, 1.5, 2.2] {
                let numeric = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
                let analytic = d.pdf(x);
                assert!(
                    (numeric - analytic).abs() < 1e-4 * analytic.max(1.0),
                    "{}: pdf({x}) = {analytic} vs numeric {numeric}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn ln_pdf_consistent_with_pdf() {
        let e = Exponential::new(2.0).unwrap();
        for &x in &[0.1, 1.0, 10.0] {
            assert!((e.ln_pdf(x) - e.pdf(x).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn importance_sampling_matches_analytic_tail() {
        // P(X > 20) for Exponential(1) = e^{-20} ≈ 2.06e-9: invisible to
        // naive MC at this sample count, easy with a tilted proposal.
        let nominal = Exponential::new(1.0).unwrap();
        let proposal = Exponential::new(1.0 / 20.0).unwrap(); // mean at the threshold
        let is = ImportanceSampler::new(nominal, proposal);
        let mut rng = SimRng::seed_from(4242);
        let stats = is.estimate_tail(&mut rng, 20.0, 200_000).unwrap();
        let truth = (-20.0f64).exp();
        let rel_err = (stats.estimate() - truth).abs() / truth;
        assert!(
            rel_err < 0.05,
            "estimate {} vs {truth} (rel {rel_err})",
            stats.estimate()
        );
        assert!(stats.standard_error() < truth); // variance actually reduced
    }

    #[test]
    fn naive_sampling_is_recovered_with_identical_proposal() {
        let nominal = Exponential::new(0.5).unwrap();
        let proposal = Exponential::new(0.5).unwrap();
        let is = ImportanceSampler::new(nominal, proposal);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..100 {
            let (_, w) = is.sample(&mut rng);
            assert!((w - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn effective_sample_size_penalizes_weight_skew() {
        let mut balanced = WeightedStats::new();
        let mut skewed = WeightedStats::new();
        for _ in 0..100 {
            balanced.push(1.0);
        }
        skewed.push(100.0);
        for _ in 0..99 {
            skewed.push(0.01);
        }
        assert!((balanced.effective_sample_size() - 100.0).abs() < 1e-9);
        assert!(skewed.effective_sample_size() < 2.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = WeightedStats::new();
        assert_eq!(s.estimate(), 0.0);
        assert!(s.standard_error().is_infinite());
        assert_eq!(s.effective_sample_size(), 0.0);
    }

    #[test]
    fn zero_samples_rejected() {
        let is = ImportanceSampler::new(
            Exponential::new(1.0).unwrap(),
            Exponential::new(0.1).unwrap(),
        );
        let mut rng = SimRng::seed_from(1);
        assert!(is.estimate_tail(&mut rng, 1.0, 0).is_err());
    }
}
