//! Deterministic ordered parallel mapping.
//!
//! The workspace's two parallel runners (the Monte-Carlo iteration scheduler
//! in `availsim-core` and the campaign batch runner in `availsim-exp`) share
//! one concurrency shape: N scoped workers claim item indices from a shared
//! atomic cursor, and results are reassembled **in index order** before any
//! aggregation — so which thread computed what never changes a result bit.
//! This module is that shape, written once.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Resolves a requested worker count: an explicit count is used as-is;
/// `0` (auto) becomes the machine's [`std::thread::available_parallelism`]
/// (1 if unknown). The single source of the auto-parallelism policy for
/// every [`ordered_parallel_map`] caller.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Maps `f` over `0..items` on `workers` scoped threads, returning the
/// results sorted by item index.
///
/// Work is claimed dynamically (shared cursor), so load balances across
/// uneven items; the output order — and therefore any order-sensitive
/// floating-point reduction performed over it — is independent of the
/// worker count. `workers` is clamped to `[1, items]`.
///
/// `abort_after` is consulted on each produced value; when it returns
/// `true`, workers stop claiming *new* items (already claimed items still
/// finish and are returned). Use it to cut a batch short on the first
/// error. On abort the result can be shorter than `items`; without abort it
/// is always complete.
pub fn ordered_parallel_map<T, F, A>(
    items: u64,
    workers: usize,
    f: F,
    abort_after: A,
) -> Vec<(u64, T)>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
    A: Fn(&T) -> bool + Sync,
{
    ordered_parallel_map_with(items, workers, || (), |(), i| f(i), abort_after)
}

/// [`ordered_parallel_map`] with **worker-scoped scratch state**: each
/// worker thread calls `init()` exactly once when it starts and hands the
/// resulting value mutably to `f` for every item it claims.
///
/// This is the allocation-free fan-out primitive: a worker builds its
/// scratch (event queues, accumulators, buffers) once and reuses it across
/// all the blocks it processes, so the per-item path performs no heap
/// allocations after warm-up. The determinism contract is unchanged from
/// [`ordered_parallel_map`] — results are reassembled in item-index order,
/// so **as long as `f(state, i)` returns the same value regardless of what
/// the scratch saw before** (i.e. `f` fully resets the parts of the scratch
/// it reads), the output is bit-identical at any worker count. The scratch
/// is dropped when its worker finishes; nothing is returned from it.
pub fn ordered_parallel_map_with<S, T, I, F, A>(
    items: u64,
    workers: usize,
    init: I,
    f: F,
    abort_after: A,
) -> Vec<(u64, T)>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
    A: Fn(&T) -> bool + Sync,
{
    let workers = workers.clamp(1, usize::try_from(items).unwrap_or(usize::MAX).max(1));
    let cursor = AtomicU64::new(0);
    let aborted = AtomicBool::new(false);
    let mut results: Vec<(u64, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (cursor, aborted, init, f, abort_after) =
                    (&cursor, &aborted, &init, &f, &abort_after);
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        if aborted.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        let value = f(&mut state, i);
                        if abort_after(&value) {
                            aborted.store(true, Ordering::Relaxed);
                        }
                        local.push((i, value));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    results.sort_by_key(|(i, _)| *i);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_workers_passes_explicit_and_floors_auto_at_one() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn covers_every_item_exactly_once_in_order() {
        for workers in [1, 2, 7, 64] {
            let out = ordered_parallel_map(100, workers, |i| i * 3, |_| false);
            assert_eq!(out.len(), 100);
            for (k, (i, v)) in out.iter().enumerate() {
                assert_eq!(*i, k as u64);
                assert_eq!(*v, k as u64 * 3);
            }
        }
    }

    #[test]
    fn zero_items_returns_empty() {
        let out = ordered_parallel_map(0, 4, |i| i, |_| false);
        assert!(out.is_empty());
    }

    #[test]
    fn result_is_worker_count_invariant_for_float_reductions() {
        let reduce = |workers| {
            let out = ordered_parallel_map(1000, workers, |i| 1.0 / (i as f64 + 1.0), |_| false);
            out.iter().map(|(_, v)| *v).sum::<f64>().to_bits()
        };
        assert_eq!(reduce(1), reduce(5));
    }

    #[test]
    fn worker_state_is_built_once_per_worker_and_reused() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let workers = 3;
        let out = ordered_parallel_map_with(
            50,
            workers,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                // Scratch: a reusable buffer each item fills and reads.
                Vec::<u64>::with_capacity(8)
            },
            |buf, i| {
                buf.clear();
                buf.extend_from_slice(&[i, i + 1]);
                buf.iter().sum::<u64>()
            },
            |_| false,
        );
        assert!(inits.load(Ordering::Relaxed) <= workers);
        assert_eq!(out.len(), 50);
        for (i, v) in &out {
            assert_eq!(*v, 2 * i + 1);
        }
    }

    #[test]
    fn worker_state_variant_is_worker_count_invariant() {
        let reduce = |workers| {
            let out = ordered_parallel_map_with(
                500,
                workers,
                || 0u64, // per-worker claim counter: result must not read it
                |count, i| {
                    *count += 1;
                    1.0 / (i as f64 + 1.0)
                },
                |_| false,
            );
            out.iter().map(|(_, v)| *v).sum::<f64>().to_bits()
        };
        assert_eq!(reduce(1), reduce(7));
    }

    #[test]
    fn abort_stops_claiming_new_items() {
        let out = ordered_parallel_map(1_000_000, 2, |i| i, |&v| v == 10);
        // Item 10 was produced; far fewer than a million items ran.
        assert!(out.iter().any(|&(i, _)| i == 10));
        assert!(out.len() < 1_000_000);
    }

    #[test]
    fn without_abort_partial_results_never_happen() {
        let out = ordered_parallel_map(257, 8, |i| i % 7, |_| false);
        assert_eq!(out.len(), 257);
    }
}
