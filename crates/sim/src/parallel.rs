//! Deterministic ordered parallel mapping.
//!
//! The workspace's two parallel runners (the Monte-Carlo iteration scheduler
//! in `availsim-core` and the campaign batch runner in `availsim-exp`) share
//! one concurrency shape: N scoped workers claim item indices from a shared
//! atomic cursor, and results are reassembled **in index order** before any
//! aggregation — so which thread computed what never changes a result bit.
//! This module is that shape, written once.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cooperative cancellation / deadline budget shared between a controller
/// and the workers of an [`ordered_parallel_map_cancellable`] run.
///
/// A token trips in one of two ways: explicitly via [`CancelToken::cancel`]
/// (e.g. a server draining on shutdown), or implicitly when the optional
/// wall-clock deadline passes. Workers poll [`CancelToken::is_cancelled`]
/// once per *claimed item* — items are whole Monte-Carlo blocks or campaign
/// cells, so the poll is off the hot per-event path. Cancellation stops the
/// claiming of **new** items; items already claimed still finish, so every
/// value that is returned was computed completely and deterministically.
///
/// Cloning is cheap (an [`Arc`] bump); clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own; only [`cancel`](Self::cancel)
    /// trips it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips automatically once `deadline` passes (and can
    /// still be tripped earlier via [`cancel`](Self::cancel)).
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// The wall-clock deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trips the token: all clones observe cancellation from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Resolves a requested worker count: an explicit count is used as-is;
/// `0` (auto) becomes the machine's [`std::thread::available_parallelism`]
/// (1 if unknown). The single source of the auto-parallelism policy for
/// every [`ordered_parallel_map`] caller.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Maps `f` over `0..items` on `workers` scoped threads, returning the
/// results sorted by item index.
///
/// Work is claimed dynamically (shared cursor), so load balances across
/// uneven items; the output order — and therefore any order-sensitive
/// floating-point reduction performed over it — is independent of the
/// worker count. `workers` is clamped to `[1, items]`.
///
/// `abort_after` is consulted on each produced value; when it returns
/// `true`, workers stop claiming *new* items (already claimed items still
/// finish and are returned). Use it to cut a batch short on the first
/// error. On abort the result can be shorter than `items`; without abort it
/// is always complete.
pub fn ordered_parallel_map<T, F, A>(
    items: u64,
    workers: usize,
    f: F,
    abort_after: A,
) -> Vec<(u64, T)>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
    A: Fn(&T) -> bool + Sync,
{
    ordered_parallel_map_with(items, workers, || (), |(), i| f(i), abort_after)
}

/// [`ordered_parallel_map`] with **worker-scoped scratch state**: each
/// worker thread calls `init()` exactly once when it starts and hands the
/// resulting value mutably to `f` for every item it claims.
///
/// This is the allocation-free fan-out primitive: a worker builds its
/// scratch (event queues, accumulators, buffers) once and reuses it across
/// all the blocks it processes, so the per-item path performs no heap
/// allocations after warm-up. The determinism contract is unchanged from
/// [`ordered_parallel_map`] — results are reassembled in item-index order,
/// so **as long as `f(state, i)` returns the same value regardless of what
/// the scratch saw before** (i.e. `f` fully resets the parts of the scratch
/// it reads), the output is bit-identical at any worker count. The scratch
/// is dropped when its worker finishes; nothing is returned from it.
pub fn ordered_parallel_map_with<S, T, I, F, A>(
    items: u64,
    workers: usize,
    init: I,
    f: F,
    abort_after: A,
) -> Vec<(u64, T)>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
    A: Fn(&T) -> bool + Sync,
{
    ordered_parallel_map_cancellable(items, workers, init, f, abort_after, None)
}

/// [`ordered_parallel_map_with`] plus an optional [`CancelToken`] consulted
/// before each item claim.
///
/// When the token trips (explicit cancel or deadline), workers stop claiming
/// new items exactly like `abort_after` — in-flight items finish and are
/// returned. The caller distinguishes a cancelled run from a complete one by
/// `result.len() < items`: every returned value is still fully computed, in
/// index order, and bit-identical to what an uncancelled run would have
/// produced for that index at any worker count.
pub fn ordered_parallel_map_cancellable<S, T, I, F, A>(
    items: u64,
    workers: usize,
    init: I,
    f: F,
    abort_after: A,
    cancel: Option<&CancelToken>,
) -> Vec<(u64, T)>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
    A: Fn(&T) -> bool + Sync,
{
    let workers = workers.clamp(1, usize::try_from(items).unwrap_or(usize::MAX).max(1));
    let cursor = AtomicU64::new(0);
    let aborted = AtomicBool::new(false);
    let mut results: Vec<(u64, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (cursor, aborted, init, f, abort_after) =
                    (&cursor, &aborted, &init, &f, &abort_after);
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        if aborted.load(Ordering::Relaxed)
                            || cancel.is_some_and(CancelToken::is_cancelled)
                        {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        let value = f(&mut state, i);
                        if abort_after(&value) {
                            aborted.store(true, Ordering::Relaxed);
                        }
                        local.push((i, value));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    results.sort_by_key(|(i, _)| *i);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_workers_passes_explicit_and_floors_auto_at_one() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn covers_every_item_exactly_once_in_order() {
        for workers in [1, 2, 7, 64] {
            let out = ordered_parallel_map(100, workers, |i| i * 3, |_| false);
            assert_eq!(out.len(), 100);
            for (k, (i, v)) in out.iter().enumerate() {
                assert_eq!(*i, k as u64);
                assert_eq!(*v, k as u64 * 3);
            }
        }
    }

    #[test]
    fn zero_items_returns_empty() {
        let out = ordered_parallel_map(0, 4, |i| i, |_| false);
        assert!(out.is_empty());
    }

    #[test]
    fn result_is_worker_count_invariant_for_float_reductions() {
        let reduce = |workers| {
            let out = ordered_parallel_map(1000, workers, |i| 1.0 / (i as f64 + 1.0), |_| false);
            out.iter().map(|(_, v)| *v).sum::<f64>().to_bits()
        };
        assert_eq!(reduce(1), reduce(5));
    }

    #[test]
    fn worker_state_is_built_once_per_worker_and_reused() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let workers = 3;
        let out = ordered_parallel_map_with(
            50,
            workers,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                // Scratch: a reusable buffer each item fills and reads.
                Vec::<u64>::with_capacity(8)
            },
            |buf, i| {
                buf.clear();
                buf.extend_from_slice(&[i, i + 1]);
                buf.iter().sum::<u64>()
            },
            |_| false,
        );
        assert!(inits.load(Ordering::Relaxed) <= workers);
        assert_eq!(out.len(), 50);
        for (i, v) in &out {
            assert_eq!(*v, 2 * i + 1);
        }
    }

    #[test]
    fn worker_state_variant_is_worker_count_invariant() {
        let reduce = |workers| {
            let out = ordered_parallel_map_with(
                500,
                workers,
                || 0u64, // per-worker claim counter: result must not read it
                |count, i| {
                    *count += 1;
                    1.0 / (i as f64 + 1.0)
                },
                |_| false,
            );
            out.iter().map(|(_, v)| *v).sum::<f64>().to_bits()
        };
        assert_eq!(reduce(1), reduce(7));
    }

    #[test]
    fn abort_stops_claiming_new_items() {
        let out = ordered_parallel_map(1_000_000, 2, |i| i, |&v| v == 10);
        // Item 10 was produced; far fewer than a million items ran.
        assert!(out.iter().any(|&(i, _)| i == 10));
        assert!(out.len() < 1_000_000);
    }

    #[test]
    fn without_abort_partial_results_never_happen() {
        let out = ordered_parallel_map(257, 8, |i| i % 7, |_| false);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn cancel_token_defaults_to_live_and_trips_on_cancel() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
        let clone = token.clone();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn cancel_token_trips_once_deadline_passes() {
        let future =
            CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(60));
        assert!(!future.is_cancelled());
        let past = CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        assert!(past.is_cancelled());
    }

    #[test]
    fn pre_cancelled_token_claims_no_items() {
        let token = CancelToken::new();
        token.cancel();
        let out =
            ordered_parallel_map_cancellable(1_000, 4, || (), |(), i| i, |_| false, Some(&token));
        assert!(out.is_empty());
    }

    #[test]
    fn cancel_mid_run_stops_claiming_but_returns_complete_prefix_values() {
        let token = CancelToken::new();
        let out = ordered_parallel_map_cancellable(
            1_000_000,
            2,
            || (),
            |(), i| {
                if i == 5 {
                    token.cancel();
                }
                i * 2
            },
            |_| false,
            Some(&token),
        );
        // Item 5 itself completed (cancellation never truncates a claimed
        // item) and far fewer than a million items ran afterwards.
        assert!(out.iter().any(|&(i, v)| i == 5 && v == 10));
        assert!(out.len() < 1_000_000);
        // Every returned value is the fully computed value for its index.
        for (i, v) in &out {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn none_token_is_equivalent_to_uncancellable_run() {
        let out = ordered_parallel_map_cancellable(64, 3, || (), |(), i| i + 1, |_| false, None);
        assert_eq!(out.len(), 64);
    }
}
