//! Goodness-of-fit tests used to validate the samplers against their
//! analytic distributions.

use crate::distributions::Lifetime;
use crate::error::{Result, SimError};
use crate::stats::special::reg_gamma_lower;

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D_n = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value from the Kolmogorov distribution.
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// One-sample KS test of `samples` against a distribution's CDF.
///
/// # Errors
/// Returns [`SimError::InsufficientData`] for an empty sample.
pub fn ks_test(samples: &[f64], dist: &dyn Lifetime) -> Result<KsResult> {
    ks_test_cdf(samples, &|x| dist.cdf(x))
}

/// One-sample KS test against an arbitrary CDF.
///
/// # Errors
/// Returns [`SimError::InsufficientData`] for an empty sample.
pub fn ks_test_cdf(samples: &[f64], cdf: &dyn Fn(f64) -> f64) -> Result<KsResult> {
    if samples.is_empty() {
        return Err(SimError::InsufficientData {
            needed: 1,
            available: 0,
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let n = sorted.len();
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let p_value = kolmogorov_survival((nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d);
    Ok(KsResult {
        statistic: d,
        p_value,
        n,
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(t) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²t²}`.
fn kolmogorov_survival(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * t * t).exp();
        if term < 1e-18 {
            break;
        }
        sum += if k % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Result of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub df: f64,
    /// p-value (upper tail).
    pub p_value: f64,
}

/// Chi-square test of observed counts against expected counts.
///
/// Bins with expected count below 5 are merged into their right neighbor, per
/// standard practice.
///
/// # Errors
/// Returns [`SimError::InsufficientData`] if fewer than two usable bins
/// remain, or [`SimError::InvalidConfig`] on length mismatch.
pub fn chi_square_test(observed: &[u64], expected: &[f64]) -> Result<ChiSquareResult> {
    if observed.len() != expected.len() {
        return Err(SimError::InvalidConfig(format!(
            "observed ({}) and expected ({}) lengths differ",
            observed.len(),
            expected.len()
        )));
    }
    // Merge low-expectation bins.
    let mut merged: Vec<(f64, f64)> = Vec::new(); // (obs, exp)
    let mut acc_obs = 0.0;
    let mut acc_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        acc_obs += o as f64;
        acc_exp += e;
        if acc_exp >= 5.0 {
            merged.push((acc_obs, acc_exp));
            acc_obs = 0.0;
            acc_exp = 0.0;
        }
    }
    if acc_exp > 0.0 {
        if let Some(last) = merged.last_mut() {
            last.0 += acc_obs;
            last.1 += acc_exp;
        } else {
            merged.push((acc_obs, acc_exp));
        }
    }
    if merged.len() < 2 {
        return Err(SimError::InsufficientData {
            needed: 2,
            available: merged.len(),
        });
    }
    let statistic: f64 = merged.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let df = (merged.len() - 1) as f64;
    // Upper tail of chi-square(df): Q = 1 − P(df/2, x/2).
    let p_value = 1.0 - reg_gamma_lower(df / 2.0, statistic / 2.0)?;
    Ok(ChiSquareResult {
        statistic,
        df,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Exponential, Weibull};
    use crate::rng::SimRng;

    #[test]
    fn ks_accepts_correct_distribution() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = SimRng::seed_from(101);
        let samples: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&samples, &d).unwrap();
        assert!(r.p_value > 0.01, "p={} d={}", r.p_value, r.statistic);
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let actual = Exponential::new(0.5).unwrap();
        let claimed = Exponential::new(1.0).unwrap();
        let mut rng = SimRng::seed_from(102);
        let samples: Vec<f64> = (0..5_000).map(|_| actual.sample(&mut rng)).collect();
        let r = ks_test(&samples, &claimed).unwrap();
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn ks_validates_weibull_sampler() {
        let d = Weibull::new(3.0, 1.48).unwrap();
        let mut rng = SimRng::seed_from(103);
        let samples: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&samples, &d).unwrap();
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn ks_empty_sample_errors() {
        let d = Exponential::new(1.0).unwrap();
        assert!(ks_test(&[], &d).is_err());
    }

    #[test]
    fn kolmogorov_survival_monotone() {
        let mut prev = 1.0;
        for i in 1..50 {
            let t = i as f64 / 10.0;
            let q = kolmogorov_survival(t);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
        assert!(kolmogorov_survival(0.0) == 1.0);
        assert!(kolmogorov_survival(5.0) < 1e-9);
    }

    #[test]
    fn chi_square_uniform_counts_fit() {
        let observed = [98u64, 105, 102, 95, 100];
        let expected = [100.0; 5];
        let r = chi_square_test(&observed, &expected).unwrap();
        assert!(r.p_value > 0.5, "p={}", r.p_value);
    }

    #[test]
    fn chi_square_detects_bias() {
        let observed = [200u64, 50, 100, 100, 50];
        let expected = [100.0; 5];
        let r = chi_square_test(&observed, &expected).unwrap();
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn chi_square_merges_small_bins() {
        // Expected counts below 5 get merged rather than blowing up the
        // statistic.
        let observed = [1u64, 2, 50, 47];
        let expected = [1.5, 2.5, 48.0, 48.0];
        let r = chi_square_test(&observed, &expected).unwrap();
        assert!(r.df >= 1.0);
        assert!(r.p_value > 0.01);
    }

    #[test]
    fn chi_square_length_mismatch() {
        assert!(chi_square_test(&[1, 2], &[1.0]).is_err());
    }
}
