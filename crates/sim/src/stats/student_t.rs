//! Student's t distribution: CDF and quantiles.
//!
//! The paper's Monte-Carlo error analysis uses the t-student coefficient for
//! a target confidence level; this module provides exact quantiles for any
//! degrees of freedom via the inverse incomplete beta function.

use crate::error::{Result, SimError};
use crate::stats::special::{normal_quantile, reg_beta};

/// CDF of Student's t with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df` is not positive.
pub fn t_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if x == 0.0 {
        return 0.5;
    }
    let ib = reg_beta(df / 2.0, 0.5, df / (df + x * x)).unwrap_or(0.0);
    if x > 0.0 {
        1.0 - 0.5 * ib
    } else {
        0.5 * ib
    }
}

/// Quantile (inverse CDF) of Student's t with `df` degrees of freedom.
///
/// Uses the normal quantile as the starting point and refines by bisection +
/// Newton steps on the exact CDF; accurate to ~1e-12.
///
/// # Errors
/// Returns [`SimError::InvalidProbability`] for `p` outside `(0, 1)`.
pub fn t_quantile(p: f64, df: f64) -> Result<f64> {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if p <= 0.0 || p >= 1.0 {
        return Err(SimError::InvalidProbability(p));
    }
    if (p - 0.5).abs() < 1e-300 {
        return Ok(0.0);
    }
    // Exploit symmetry: solve in the upper half.
    if p < 0.5 {
        return Ok(-t_quantile(1.0 - p, df)?);
    }
    // Initial guess from the normal quantile, inflated for heavy tails
    // (Cornish-Fisher first-order term).
    let z = normal_quantile(p)?;
    let g1 = (z * z * z + z) / (4.0 * df);
    let mut x = z + g1;
    // Bracket the root.
    let mut lo = 0.0f64;
    let mut hi = x.max(1.0);
    while t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(SimError::NoConvergence("t quantile bracketing"));
        }
    }
    x = x.clamp(lo, hi);
    // Safeguarded Newton iteration.
    for _ in 0..100 {
        let f = t_cdf(x, df) - p;
        if f.abs() < 1e-15 {
            return Ok(x);
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let pdf = t_pdf(x, df);
        let step = if pdf > 1e-300 { f / pdf } else { 0.0 };
        let mut next = x - step;
        if !(next > lo && next < hi) || step == 0.0 {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() < 1e-14 * x.abs().max(1.0) {
            return Ok(next);
        }
        x = next;
    }
    Ok(x)
}

/// PDF of Student's t with `df` degrees of freedom.
///
/// # Panics
/// Panics if `df` is not positive.
pub fn t_pdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    use crate::stats::special::ln_gamma;
    let ln_c =
        ln_gamma((df + 1.0) / 2.0) - ln_gamma(df / 2.0) - 0.5 * (df * std::f64::consts::PI).ln();
    (ln_c - (df + 1.0) / 2.0 * (1.0 + x * x / df).ln()).exp()
}

/// Two-sided critical value `t*` such that `P(|T| <= t*) = confidence`.
///
/// # Errors
/// Returns [`SimError::InvalidProbability`] for confidence outside `(0, 1)`.
pub fn t_critical_two_sided(confidence: f64, df: f64) -> Result<f64> {
    if confidence <= 0.0 || confidence >= 1.0 {
        return Err(SimError::InvalidProbability(confidence));
    }
    t_quantile(0.5 + confidence / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_at_zero_is_half() {
        for &df in &[1.0, 2.0, 10.0, 100.0] {
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let df = 7.0;
        let mut prev = 0.0;
        for i in -40..=40 {
            let x = i as f64 / 4.0;
            let c = t_cdf(x, df);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn df_one_is_cauchy() {
        // For df=1 (Cauchy): CDF(x) = 1/2 + atan(x)/π.
        for &x in &[-3.0f64, -1.0, 0.5, 2.0] {
            let expect = 0.5 + x.atan() / std::f64::consts::PI;
            assert!((t_cdf(x, 1.0) - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn quantile_reference_values() {
        // Classic t-table values (two-sided 95% -> p = 0.975).
        let cases = [
            (0.975, 1.0, 12.706_204_736_174_7),
            (0.975, 5.0, 2.570_581_835_636_2),
            (0.975, 30.0, 2.042_272_456_301_2),
            (0.995, 10.0, 3.169_272_672_616_8),
            (0.95, 2.0, 2.919_985_580_355_5),
        ];
        for &(p, df, expect) in &cases {
            let q = t_quantile(p, df).unwrap();
            assert!((q - expect).abs() < 1e-6, "p={p}, df={df}: {q} vs {expect}");
        }
    }

    #[test]
    fn quantile_roundtrips_through_cdf() {
        for &df in &[1.0, 3.0, 17.0, 250.0] {
            for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
                let x = t_quantile(p, df).unwrap();
                assert!((t_cdf(x, df) - p).abs() < 1e-10, "df={df}, p={p}");
            }
        }
    }

    #[test]
    fn quantile_is_symmetric() {
        for &df in &[2.0, 9.0] {
            let q1 = t_quantile(0.975, df).unwrap();
            let q2 = t_quantile(0.025, df).unwrap();
            assert!((q1 + q2).abs() < 1e-10);
        }
    }

    #[test]
    fn large_df_approaches_normal() {
        let q = t_quantile(0.975, 1e6).unwrap();
        assert!((q - 1.959_963_984_540_054).abs() < 1e-4);
    }

    #[test]
    fn critical_value_confidence() {
        // 99% two-sided with df=5 -> 4.0321...
        let t = t_critical_two_sided(0.99, 5.0).unwrap();
        assert!((t - 4.032_142_983_832_8).abs() < 1e-6);
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(t_quantile(0.0, 5.0).is_err());
        assert!(t_quantile(1.0, 5.0).is_err());
        assert!(t_critical_two_sided(1.5, 5.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_cdf_difference() {
        // Trapezoidal integration of the pdf over [0, 2] vs CDF difference.
        let df = 4.0;
        let n = 2_000;
        let h = 2.0 / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let a = i as f64 * h;
            let b = a + h;
            integral += 0.5 * h * (t_pdf(a, df) + t_pdf(b, df));
        }
        let expect = t_cdf(2.0, df) - t_cdf(0.0, df);
        assert!((integral - expect).abs() < 1e-6);
    }
}
