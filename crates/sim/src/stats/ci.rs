//! Confidence intervals for Monte-Carlo estimators.
//!
//! The paper states that "the error of MC simulations is inversely
//! proportional to the root square of the number of iterations and the
//! t-student coefficient for a target confidence level"; this module provides
//! exactly that machinery.

use crate::error::{Result, SimError};
use crate::stats::student_t::t_critical_two_sided;
use crate::stats::welford::RunningStats;
use std::fmt;

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// The confidence level used, e.g. `0.99`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower() && x <= self.upper()
    }

    /// Relative half-width `half_width / |mean|` (`inf` if the mean is zero).
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6e} ± {:.3e} ({:.1}% CI)",
            self.mean,
            self.half_width,
            self.confidence * 100.0
        )
    }
}

/// Builds a t-based confidence interval from accumulated statistics.
///
/// # Errors
/// Returns [`SimError::InsufficientData`] with fewer than two observations
/// and [`SimError::InvalidProbability`] for a confidence outside `(0, 1)`.
pub fn t_interval(stats: &RunningStats, confidence: f64) -> Result<ConfidenceInterval> {
    if stats.count() < 2 {
        return Err(SimError::InsufficientData {
            needed: 2,
            available: stats.count() as usize,
        });
    }
    if confidence <= 0.0 || confidence >= 1.0 {
        return Err(SimError::InvalidProbability(confidence));
    }
    let df = (stats.count() - 1) as f64;
    let t = t_critical_two_sided(confidence, df)?;
    Ok(ConfidenceInterval {
        mean: stats.mean(),
        half_width: t * stats.standard_error(),
        confidence,
    })
}

/// Builds a normal-approximation interval for a binomial proportion
/// (Wilson score interval, which behaves sanely for rare events).
///
/// # Errors
/// Returns [`SimError::InsufficientData`] for zero trials and
/// [`SimError::InvalidProbability`] for a confidence outside `(0, 1)`.
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> Result<ConfidenceInterval> {
    if trials == 0 {
        return Err(SimError::InsufficientData {
            needed: 1,
            available: 0,
        });
    }
    if confidence <= 0.0 || confidence >= 1.0 {
        return Err(SimError::InvalidProbability(confidence));
    }
    let z = crate::stats::special::normal_quantile(0.5 + confidence / 2.0)?;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    Ok(ConfidenceInterval {
        mean: center,
        half_width: half,
        confidence,
    })
}

/// How many iterations are needed for a target relative half-width, given a
/// pilot run (the "inverse square root" law the paper cites).
///
/// # Errors
/// Returns [`SimError::InsufficientData`] if the pilot has fewer than two
/// observations, and [`SimError::InvalidConfig`] if the pilot mean is zero
/// (relative precision undefined) or `target_rel` is not positive.
pub fn required_iterations(pilot: &RunningStats, confidence: f64, target_rel: f64) -> Result<u64> {
    if pilot.count() < 2 {
        return Err(SimError::InsufficientData {
            needed: 2,
            available: pilot.count() as usize,
        });
    }
    if target_rel <= 0.0 {
        return Err(SimError::InvalidConfig(format!(
            "target relative half-width must be positive, got {target_rel}"
        )));
    }
    if pilot.mean() == 0.0 {
        return Err(SimError::InvalidConfig(
            "pilot mean is zero; relative precision undefined".into(),
        ));
    }
    let t = t_critical_two_sided(confidence, (pilot.count() - 1) as f64)?;
    let needed = (t * pilot.sample_std() / (target_rel * pilot.mean().abs())).powi(2);
    Ok(needed.ceil().max(2.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn stats_from(data: &[f64]) -> RunningStats {
        let mut s = RunningStats::new();
        for &x in data {
            s.push(x);
        }
        s
    }

    #[test]
    fn interval_accessors() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            confidence: 0.95,
        };
        assert_eq!(ci.lower(), 8.0);
        assert_eq!(ci.upper(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
        assert!((ci.relative_half_width() - 0.2).abs() < 1e-15);
        assert!(ci.to_string().contains("95.0%"));
    }

    #[test]
    fn t_interval_known_case() {
        // Data with mean 5, sd 1, n=4 -> half width = t(0.975, 3) * 0.5.
        let s = stats_from(&[4.0, 5.0, 5.0, 6.0]);
        let ci = t_interval(&s, 0.95).unwrap();
        let t = 3.182_446_305_284_263; // t(0.975, df=3)
        let expected_hw = t * (2.0f64 / 3.0).sqrt() / 2.0;
        assert!((ci.mean - 5.0).abs() < 1e-12);
        assert!((ci.half_width - expected_hw).abs() < 1e-6);
    }

    #[test]
    fn t_interval_requires_two_points() {
        let s = stats_from(&[1.0]);
        assert!(t_interval(&s, 0.95).is_err());
    }

    #[test]
    fn coverage_of_t_interval_is_nominal() {
        // Repeatedly estimate the mean of a uniform(0,1); ~95% of intervals
        // should contain 0.5.
        let mut rng = SimRng::seed_from(2024);
        let mut covered = 0;
        let reps = 1_000;
        for _ in 0..reps {
            let mut s = RunningStats::new();
            for _ in 0..30 {
                s.push(rng.next_f64());
            }
            if t_interval(&s, 0.95).unwrap().contains(0.5) {
                covered += 1;
            }
        }
        let rate = covered as f64 / reps as f64;
        assert!((rate - 0.95).abs() < 0.03, "coverage {rate}");
    }

    #[test]
    fn wilson_handles_zero_successes() {
        let ci = wilson_interval(0, 1_000, 0.99).unwrap();
        assert!(ci.lower() >= 0.0);
        assert!(ci.upper() > 0.0 && ci.upper() < 0.02);
    }

    #[test]
    fn wilson_is_symmetric_for_half() {
        let ci = wilson_interval(500, 1_000, 0.95).unwrap();
        assert!((ci.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn required_iterations_shrinks_with_looser_target() {
        let mut s = RunningStats::new();
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            s.push(1.0 + rng.next_f64());
        }
        let tight = required_iterations(&s, 0.99, 0.001).unwrap();
        let loose = required_iterations(&s, 0.99, 0.01).unwrap();
        assert!(tight > loose);
        // Quadratic scaling: 10x tighter -> ~100x more samples.
        let ratio = tight as f64 / loose as f64;
        assert!((ratio - 100.0).abs() < 15.0, "ratio {ratio}");
    }

    #[test]
    fn required_iterations_rejects_zero_mean() {
        let s = stats_from(&[-1.0, 1.0]);
        assert!(required_iterations(&s, 0.95, 0.01).is_err());
    }
}
