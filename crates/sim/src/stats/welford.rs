//! Numerically stable running statistics (Welford's online algorithm).

/// Accumulates count, mean, and variance in one pass without catastrophic
/// cancellation.
///
/// # Examples
///
/// ```
/// use availsim_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (requires at least two observations; 0
    /// otherwise).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (biased) variance.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic Welford stress: large mean, small variance.
        let mut s = RunningStats::new();
        for i in 0..10_000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!((s.mean() - (1e9 + 0.5)).abs() < 1e-3);
        assert!((s.sample_variance() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() + 2.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..200] {
            a.push(x);
        }
        for &x in &data[200..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
