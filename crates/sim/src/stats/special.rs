//! Special functions used by the statistics and distribution modules.
//!
//! Implementations follow the standard numerical recipes: a Lanczos series
//! for `ln Γ`, a power series / continued-fraction pair for the regularized
//! incomplete gamma, the Lentz continued fraction for the regularized
//! incomplete beta, and Acklam's rational approximation (with one Halley
//! refinement step) for the inverse normal CDF. Accuracies are verified
//! against high-precision reference values in the tests.

use crate::error::{Result, SimError};

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients (|rel err| < 1e-13).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula to keep the Lanczos series in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x)/Γ(a)`.
///
/// Uses the power series for `x < a + 1` and the continued fraction
/// otherwise.
///
/// # Errors
/// Returns [`SimError::NoConvergence`] if the expansion stalls (does not
/// happen for sane arguments).
pub fn reg_gamma_lower(a: f64, x: f64) -> Result<f64> {
    assert!(a > 0.0 && x >= 0.0, "domain error: a={a}, x={x}");
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) Σ x^n / (a(a+1)...(a+n))
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                let log = -x + a * x.ln() - ln_gamma(a);
                return Ok((sum * log.exp()).clamp(0.0, 1.0));
            }
        }
        Err(SimError::NoConvergence("incomplete gamma series"))
    } else {
        // Continued fraction for Q(a,x), modified Lentz.
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                let log = -x + a * x.ln() - ln_gamma(a);
                let q = (log.exp() * h).clamp(0.0, 1.0);
                return Ok(1.0 - q);
            }
        }
        Err(SimError::NoConvergence(
            "incomplete gamma continued fraction",
        ))
    }
}

/// Regularized incomplete beta `I_x(a, b)` via the Lentz continued fraction.
///
/// # Errors
/// Returns [`SimError::NoConvergence`] if the fraction stalls.
pub fn reg_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    assert!(a > 0.0 && b > 0.0, "domain error: a={a}, b={b}");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry that keeps the fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((front * beta_cf(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - front * beta_cf(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            return Ok(h);
        }
    }
    Err(SimError::NoConvergence(
        "incomplete beta continued fraction",
    ))
}

/// Error function `erf(x)`, via the regularized incomplete gamma.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_gamma_lower(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation refined with one Halley step, giving
/// ~1e-15 relative accuracy across the domain.
///
/// # Errors
/// Returns [`SimError::InvalidProbability`] if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        return Err(SimError::InvalidProbability(p));
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-13);
        assert!(ln_gamma(2.0).abs() < 1e-13);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-12);
        // Γ(10.5) = 1133278.3889487855...
        assert!((ln_gamma(10.5) - 1_133_278.388_948_785_5f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence_holds() {
        // Γ(x+1) = x·Γ(x)
        for &x in &[0.1, 0.9, 1.7, 3.3, 12.0, 100.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn incomplete_gamma_matches_exponential_cdf() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.01, 0.5, 1.0, 3.0, 10.0] {
            let p = reg_gamma_lower(1.0, x).unwrap();
            let expect = 1.0 - (-x).exp();
            assert!((p - expect).abs() < 1e-13, "x={x}: {p} vs {expect}");
        }
    }

    #[test]
    fn incomplete_gamma_matches_erlang_cdf() {
        // P(2, x) = 1 - e^{-x}(1 + x)
        for &x in &[0.1, 1.0, 2.5, 8.0] {
            let p = reg_gamma_lower(2.0, x).unwrap();
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((p - expect).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = reg_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_beta(b, a, 1.0 - x).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            assert!((reg_beta(1.0, 1.0, x).unwrap() - x).abs() < 1e-13);
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-10);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-10);
        for &x in &[0.3, 1.1, 2.7] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[1e-9, 1e-4, 0.025, 0.31, 0.5, 0.84, 0.975, 1.0 - 1e-7] {
            let x = normal_quantile(p).unwrap();
            assert!((normal_cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn normal_quantile_known_points() {
        assert!(normal_quantile(0.5).unwrap().abs() < 1e-12);
        assert!((normal_quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((normal_quantile(0.995).unwrap() - 2.575_829_303_548_901).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_rejects_bad_p() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.1).is_err());
        assert!(normal_quantile(1.1).is_err());
    }
}
