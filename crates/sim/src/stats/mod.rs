//! Statistics for Monte-Carlo output analysis.
//!
//! * [`RunningStats`] — one-pass mean/variance (Welford), mergeable for
//!   parallel reductions.
//! * [`ci`] — Student-t and Wilson confidence intervals, plus the
//!   iteration-count planner implied by the paper's error formula.
//! * [`BatchMeans`] — steady-state output analysis for autocorrelated runs.
//! * [`Histogram`] — fixed-width binning for diagnostics.
//! * [`gof`] — Kolmogorov–Smirnov and chi-square goodness-of-fit tests used
//!   to validate the samplers.
//! * [`special`] / [`student_t`] — the underlying special functions
//!   (`ln Γ`, incomplete gamma/beta, normal and t quantiles).

pub mod batch_means;
pub mod ci;
pub mod gof;
pub mod histogram;
pub mod special;
pub mod student_t;
pub mod welford;

pub use batch_means::BatchMeans;
pub use ci::{required_iterations, t_interval, wilson_interval, ConfidenceInterval};
pub use gof::{chi_square_test, ks_test, ks_test_cdf, ChiSquareResult, KsResult};
pub use histogram::Histogram;
pub use welford::RunningStats;
