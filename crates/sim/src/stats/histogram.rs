//! Fixed-width histogram for diagnostics and distribution fitting.

use crate::error::{Result, SimError};

/// A histogram with uniform bin width over `[lo, hi)`, plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for a degenerate range or zero
    /// bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && hi > lo) {
            return Err(SimError::InvalidConfig(format!(
                "invalid histogram range [{lo}, {hi})"
            )));
        }
        if bins == 0 {
            return Err(SimError::InvalidConfig(
                "histogram needs at least one bin".into(),
            ));
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `[start, end)` range of one bin.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn bin_range(&self, index: usize) -> (f64, f64) {
        assert!(index < self.bins.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + index as f64 * w, self.lo + (index + 1) as f64 * w)
    }

    /// Empirical density of one bin (count / total / width).
    pub fn density(&self, index: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let (a, b) = self.bin_range(index);
        self.bins[index] as f64 / self.count as f64 / (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_config() {
        assert!(Histogram::new(1.0, 1.0, 10).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.count(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_ranges_partition_domain() {
        let h = Histogram::new(2.0, 4.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (2.0, 2.5));
        assert_eq!(h.bin_range(3), (3.5, 4.0));
    }

    #[test]
    fn density_normalizes() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        for _ in 0..10 {
            h.record(0.5);
        }
        for _ in 0..10 {
            h.record(1.5);
        }
        // Each bin: 10/20 observations over width 1.0 -> density 0.5.
        assert!((h.density(0) - 0.5).abs() < 1e-12);
        assert!((h.density(1) - 0.5).abs() < 1e-12);
    }
}
