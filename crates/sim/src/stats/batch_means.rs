//! Batch-means analysis for steady-state (non-terminating) simulation output.
//!
//! Observations from a single long run are autocorrelated, so the plain
//! sample variance understates the estimator's error. Batch means groups
//! consecutive observations into batches whose means are approximately
//! independent, then applies the usual t machinery to the batch means.

use crate::error::{Result, SimError};
use crate::stats::ci::{t_interval, ConfidenceInterval};
use crate::stats::welford::RunningStats;

/// Accumulates a stream of observations into fixed-size batches.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: RunningStats,
    batch_stats: RunningStats,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for a zero batch size.
    pub fn new(batch_size: usize) -> Result<Self> {
        if batch_size == 0 {
            return Err(SimError::InvalidConfig(
                "batch size must be positive".into(),
            ));
        }
        Ok(BatchMeans {
            batch_size,
            current: RunningStats::new(),
            batch_stats: RunningStats::new(),
            batch_means: Vec::new(),
        })
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() as usize == self.batch_size {
            let m = self.current.mean();
            self.batch_means.push(m);
            self.batch_stats.push(m);
            self.current = RunningStats::new();
        }
    }

    /// Number of complete batches.
    pub fn num_batches(&self) -> usize {
        self.batch_means.len()
    }

    /// The batch means collected so far.
    pub fn batch_means(&self) -> &[f64] {
        &self.batch_means
    }

    /// Point estimate: mean of the complete batches.
    pub fn mean(&self) -> f64 {
        self.batch_stats.mean()
    }

    /// Confidence interval over batch means.
    ///
    /// # Errors
    /// Returns [`SimError::InsufficientData`] with fewer than two complete
    /// batches.
    pub fn interval(&self, confidence: f64) -> Result<ConfidenceInterval> {
        t_interval(&self.batch_stats, confidence)
    }

    /// Lag-1 autocorrelation of the batch means — a diagnostic for whether
    /// the batch size is large enough (values near zero are good).
    ///
    /// # Errors
    /// Returns [`SimError::InsufficientData`] with fewer than three batches.
    pub fn lag1_autocorrelation(&self) -> Result<f64> {
        let n = self.batch_means.len();
        if n < 3 {
            return Err(SimError::InsufficientData {
                needed: 3,
                available: n,
            });
        }
        let mean = self.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            let d = self.batch_means[i] - mean;
            den += d * d;
            if i + 1 < n {
                num += d * (self.batch_means[i + 1] - mean);
            }
        }
        if den == 0.0 {
            return Ok(0.0);
        }
        Ok(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn rejects_zero_batch_size() {
        assert!(BatchMeans::new(0).is_err());
    }

    #[test]
    fn batches_form_at_boundaries() {
        let mut bm = BatchMeans::new(3).unwrap();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            bm.push(x);
        }
        assert_eq!(bm.num_batches(), 2);
        assert_eq!(bm.batch_means(), &[2.0, 5.0]);
        assert!((bm.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn interval_needs_two_batches() {
        let mut bm = BatchMeans::new(2).unwrap();
        bm.push(1.0);
        bm.push(2.0);
        assert!(bm.interval(0.95).is_err());
        bm.push(3.0);
        bm.push(4.0);
        assert!(bm.interval(0.95).is_ok());
    }

    #[test]
    fn iid_input_gives_near_zero_autocorrelation() {
        let mut bm = BatchMeans::new(10).unwrap();
        let mut rng = SimRng::seed_from(77);
        for _ in 0..10_000 {
            bm.push(rng.next_f64());
        }
        let rho = bm.lag1_autocorrelation().unwrap();
        assert!(rho.abs() < 0.1, "rho {rho}");
    }

    #[test]
    fn correlated_input_flags_small_batches() {
        // A slow AR(1) process: with tiny batches, batch means stay strongly
        // correlated.
        let mut bm_small = BatchMeans::new(2).unwrap();
        let mut rng = SimRng::seed_from(78);
        let mut x = 0.0;
        for _ in 0..20_000 {
            x = 0.99 * x + rng.next_standard_normal();
            bm_small.push(x);
        }
        let rho_small = bm_small.lag1_autocorrelation().unwrap();
        assert!(
            rho_small > 0.5,
            "expected strong correlation, got {rho_small}"
        );
    }

    #[test]
    fn interval_covers_true_mean_for_iid() {
        let mut bm = BatchMeans::new(50).unwrap();
        let mut rng = SimRng::seed_from(80);
        for _ in 0..50_000 {
            bm.push(rng.next_f64());
        }
        let ci = bm.interval(0.99).unwrap();
        assert!(ci.contains(0.5), "{ci}");
    }
}
