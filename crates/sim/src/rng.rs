//! Deterministic pseudo-random number generation.
//!
//! The simulator ships its own xoshiro256++ generator (seeded through
//! SplitMix64, as its authors recommend) instead of depending on an external
//! RNG crate: experiment reproducibility must not change under dependency
//! upgrades, and seeds must produce identical streams on every platform.
//!
//! References: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators", ACM TOMS 2021.

/// SplitMix64: a tiny, high-quality 64-bit generator used to expand seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the crate's default generator.
///
/// # Examples
///
/// ```
/// use availsim_sim::rng::SimRng;
///
/// let mut rng = SimRng::seed_from(42);
/// let a = rng.next_f64();
/// assert!((0.0..1.0).contains(&a));
/// // Same seed, same stream:
/// let mut rng2 = SimRng::seed_from(42);
/// assert_eq!(rng2.next_f64().to_bits(), a.to_bits());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seeds the generator by expanding a 64-bit seed with SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // All-zero state is invalid (fixed point); SplitMix64 cannot produce
        // four consecutive zeros for any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives the `index`-th independent substream of a base seed.
    ///
    /// Substreams are built by hashing `(seed, index)` through SplitMix64, so
    /// parallel Monte-Carlo workers get statistically independent streams
    /// while remaining fully deterministic.
    pub fn substream(seed: u64, index: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let base = sm.next_u64();
        SimRng::seed_from(base ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — never returns zero,
    /// which makes it safe as input to `ln` in inverse-CDF samplers.
    pub fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire 2019: multiply-shift with rejection to remove bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Threshold for rejection: 2^64 mod bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Exponential deviate with the given `rate` (inverse-CDF method),
    /// or `None` when the rate is not positive — the idiom for "this
    /// transition is disabled", shared by every Monte-Carlo sampler in the
    /// workspace so the hand-rolled `-ln(u)/rate` closure is written once.
    ///
    /// Draws exactly one uniform when `rate > 0` and **none** otherwise, so
    /// replacing an open-coded sampler with this method never shifts the
    /// RNG stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use availsim_sim::rng::SimRng;
    ///
    /// let mut rng = SimRng::seed_from(1);
    /// let dt = rng.sample_exp(0.1).unwrap();
    /// assert!(dt > 0.0);
    /// assert!(rng.sample_exp(0.0).is_none());
    /// ```
    pub fn sample_exp(&mut self, rate: f64) -> Option<f64> {
        // An infinite "rate" is almost certainly a reciprocal passed to the
        // wrong method (it would silently yield dt = 0 here); reciprocals
        // go to [`Self::sample_exp_inv`].
        debug_assert!(
            !rate.is_infinite(),
            "sample_exp expects a rate, not a reciprocal (got {rate})"
        );
        (rate > 0.0).then(|| -self.next_open_f64().ln() / rate)
    }

    /// Exponential deviate from a **precomputed reciprocal rate**
    /// (`inv_rate = 1/rate`): `-ln(u) · inv_rate`. The hot-loop variant of
    /// [`Self::sample_exp`] — multiplying by a cached reciprocal instead
    /// of dividing per draw — for samplers that draw from the same fixed
    /// rate many times. Returns `None` (drawing nothing) unless `inv_rate`
    /// is positive and finite, so a disabled transition (`rate = 0`,
    /// `inv_rate = ∞`) behaves exactly like [`Self::sample_exp`].
    ///
    /// The value may differ from `sample_exp(rate)` in the last ulp
    /// (multiplication vs division rounding); the distribution is
    /// identical.
    ///
    /// # Examples
    ///
    /// ```
    /// use availsim_sim::rng::SimRng;
    ///
    /// let mut rng = SimRng::seed_from(1);
    /// let dt = rng.sample_exp_inv(10.0).unwrap(); // rate 0.1
    /// assert!(dt > 0.0);
    /// assert!(rng.sample_exp_inv(f64::INFINITY).is_none()); // rate 0
    /// ```
    pub fn sample_exp_inv(&mut self, inv_rate: f64) -> Option<f64> {
        (inv_rate > 0.0 && inv_rate.is_finite()).then(|| -self.next_open_f64().ln() * inv_rate)
    }

    /// Exponential deviate with the given `rate`, *forced* to land inside
    /// `(0, bound)` — a draw from `Exp(rate)` conditioned on `T ≤ bound`.
    ///
    /// Returns `(dt, p_hit)` where `p_hit = P(T ≤ bound) = 1 − e^{−rate·bound}`
    /// is exactly the likelihood-ratio factor an importance sampler must
    /// multiply into the mission weight to stay unbiased (the proposal puts
    /// all its mass on the truncated support). Returns `None` when the rate
    /// or the bound is not positive — "this transition is disabled", like
    /// [`Self::sample_exp`].
    ///
    /// Draws exactly one uniform when enabled and none otherwise. This is
    /// the *failure forcing* primitive of rare-event Monte-Carlo: with a
    /// mission-time bound, the first failure is guaranteed to occur within
    /// the mission, and the weight factor accounts for how unlikely that
    /// was under the nominal model.
    ///
    /// # Examples
    ///
    /// ```
    /// use availsim_sim::rng::SimRng;
    ///
    /// let mut rng = SimRng::seed_from(1);
    /// let (dt, p_hit) = rng.sample_exp_within(1e-6, 87_600.0).unwrap();
    /// assert!(dt > 0.0 && dt < 87_600.0);
    /// assert!((p_hit - (1.0 - (-1e-6f64 * 87_600.0).exp())).abs() < 1e-15);
    /// assert!(rng.sample_exp_within(0.0, 1.0).is_none());
    /// ```
    pub fn sample_exp_within(&mut self, rate: f64, bound: f64) -> Option<(f64, f64)> {
        if !(rate > 0.0 && bound > 0.0) {
            return None;
        }
        // P(T <= bound) via expm1 so tiny rate·bound keeps full precision.
        let p_hit = -(-rate * bound).exp_m1();
        let u = self.next_open_f64();
        // Inverse CDF of the truncated exponential; ln_1p keeps precision
        // when u·p_hit is tiny. u ∈ (0,1) ⇒ dt ∈ (0, bound).
        let dt = -(-u * p_hit).ln_1p() / rate;
        Some((dt.min(bound), p_hit))
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Standard normal deviate via the polar (Marsaglia) method.
    pub fn next_standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (cross-checked against the reference C
        // implementation by Vigna).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_distinct_and_deterministic() {
        let mut s0 = SimRng::substream(99, 0);
        let mut s1 = SimRng::substream(99, 1);
        let mut s0_again = SimRng::substream(99, 0);
        assert_ne!(s0.next_u64(), s1.next_u64());
        let _ = s0_again.next_u64();
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn open_f64_never_zero() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            assert!(rng.next_open_f64() > 0.0);
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::seed_from(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bounded_stays_in_range_and_covers() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_bounded(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seed_from(1).next_bounded(0);
    }

    #[test]
    fn sample_exp_mean_and_disabled_rates() {
        let mut rng = SimRng::seed_from(41);
        let n = 100_000;
        let rate = 0.02;
        let mean: f64 = (0..n).map(|_| rng.sample_exp(rate).unwrap()).sum::<f64>() / f64::from(n);
        assert!((mean - 1.0 / rate).abs() < 1.0, "mean {mean}");
        assert!(rng.sample_exp(0.0).is_none());
        assert!(rng.sample_exp(-1.0).is_none());
    }

    #[test]
    fn sample_exp_matches_open_coded_inverse_cdf() {
        // The method must be a drop-in for `-ln(u)/rate` draw-for-draw.
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        for _ in 0..100 {
            let expected = -b.next_open_f64().ln() / 0.3;
            assert_eq!(a.sample_exp(0.3).unwrap().to_bits(), expected.to_bits());
        }
        // A disabled rate consumes no randomness.
        assert!(a.sample_exp(0.0).is_none());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn sample_exp_within_stays_in_bound_and_matches_truncated_mean() {
        let mut rng = SimRng::seed_from(97);
        let (rate, bound) = (0.01, 50.0);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let (dt, p_hit) = rng.sample_exp_within(rate, bound).unwrap();
            assert!(dt > 0.0 && dt <= bound, "dt {dt}");
            assert!((p_hit - (1.0 - (-rate * bound).exp())).abs() < 1e-15);
            sum += dt;
        }
        // Mean of Exp(rate) truncated to [0, bound]:
        // 1/rate − bound·e^{−rate·bound}/(1 − e^{−rate·bound}).
        let p = 1.0 - (-rate * bound).exp();
        let expected = 1.0 / rate - bound * (1.0 - p) / p;
        let mean = sum / f64::from(n);
        assert!((mean - expected).abs() < 0.2, "mean {mean} vs {expected}");
        // Disabled rates/bounds consume no randomness.
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        assert!(a.sample_exp_within(0.0, 1.0).is_none());
        assert!(a.sample_exp_within(1.0, 0.0).is_none());
        assert!(a.sample_exp_within(-1.0, 1.0).is_none());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn sample_exp_within_is_precise_for_rare_rates() {
        // At rate·bound ≈ 1e-10 the naive 1 − e^{−x} would cancel to zero;
        // the expm1/ln_1p forms must keep the weight and the deviate exact.
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let (dt, p_hit) = rng.sample_exp_within(1e-15, 1e5).unwrap();
            assert!(dt > 0.0 && dt <= 1e5);
            assert!((p_hit - 1e-10).abs() < 1e-14, "p_hit {p_hit}");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = SimRng::seed_from(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.01)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.01).abs() < 0.002, "freq {freq}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from(23);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
