//! Indexed discrete-event queue: a flat 4-ary indexed min-heap with an
//! adaptive small-queue regime and O(log n) in-place cancellation — the
//! hot-path replacement for [`crate::engine::EventQueue`].
//!
//! The lazy-tombstone queue pays a hash-set membership probe on **every**
//! `peek`/`pop` (and keeps dead entries in the heap until they surface).
//! This queue instead maintains a slot → position index, so cancellation
//! removes the entry immediately and the pop path touches nothing but the
//! flat entry array — no tombstones, no `HashSet`, no per-operation
//! hashing.
//!
//! Two regimes share one entry array:
//!
//! * **linear** (up to [`LINEAR_MAX`] pending events) — entries are
//!   unordered, the minimum's index is tracked incrementally, so
//!   `schedule` is O(1), peeking is O(1), and a pop is one `swap_remove`
//!   plus an O(n) rescan of a few cache-resident entries. This is the
//!   regime of per-array availability missions (a handful of disk clocks
//!   and service timers), where it beats any heap.
//! * **4-ary heap** — the first schedule that would exceed the threshold
//!   heapifies the array in place and the queue stays a heap until
//!   [`IndexedEventQueue::clear`]. Four children per node halve the depth
//!   of a binary heap and keep each sift level's child scan in one or two
//!   cache lines; this is the regime of fleet-scale simulations (thousands
//!   of concurrent disk clocks).
//!
//! Both regimes pop in exactly the same `(time, seq)` order — see the
//! ordering contract on [`IndexedEventQueue`].

use crate::error::{Result, SimError};

/// Handle returned by [`IndexedEventQueue::schedule`], usable to cancel the
/// event in place.
///
/// # Invalidation contract
///
/// A handle is live from the `schedule` call that produced it until the
/// event is **popped**, **cancelled**, or the queue is **cleared** —
/// whichever comes first. After that, [`IndexedEventQueue::cancel`] on the
/// handle returns `false` and has no effect, even though the underlying
/// slot may since have been reused for a newer event: every handle carries
/// its event's sequence number (unique within a clear cycle) plus the
/// queue's clear-epoch stamp, so a stale handle — whether its event was
/// popped, cancelled, or wiped by [`IndexedEventQueue::clear`] — can never
/// cancel, or be mistaken for, a later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexedEventHandle {
    slot: u32,
    seq: u64,
    epoch: u64,
}

/// One entry of the flat array. `slot` points into the side table that
/// makes cancellation O(log n).
#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    slot: u32,
    event: E,
}

impl<E> Entry<E> {
    /// Strict queue order: earlier time first, FIFO by sequence number on
    /// ties. Times are validated non-NaN on entry, and sequence numbers are
    /// unique, so this is a total order with no equal keys.
    #[inline]
    fn before(&self, other: &Self) -> bool {
        self.time < other.time || (self.time == other.time && self.seq < other.seq)
    }
}

/// Per-slot bookkeeping: the sequence number of the occupying event (the
/// handle-validity check is one equality test) and its current position in
/// the entry array.
#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: u64,
    pos: u32,
}

/// Sequence value stored for a slot that holds no live event; no handle
/// ever carries it (the schedule counter cannot reach `u64::MAX` in any
/// physically simulable run).
const FREE_SLOT: u64 = u64::MAX;

/// Heap arity of the large-queue regime.
const ARITY: usize = 4;

/// Largest pending-event count served by the linear regime; one more
/// schedule heapifies. 32 entries keep the rescan-on-pop inside a few
/// cache lines while covering every per-array mission comfortably.
const LINEAR_MAX: usize = 32;

/// `min_pos` sentinel for an empty queue.
const NO_MIN: u32 = u32::MAX;

/// Cumulative traffic counters of an [`IndexedEventQueue`], maintained
/// unconditionally (plain integer adds, negligible next to any queue
/// operation) and surviving [`IndexedEventQueue::clear`] so one workspace
/// queue accounts for a whole run of missions.
///
/// # Conservation invariant
///
/// Every accepted schedule is eventually accounted for exactly once:
///
/// ```text
/// scheduled == fired + cancelled + expired + len()
/// ```
///
/// where [`note_expired`](IndexedEventQueue::note_expired) records a drawn
/// delay that landed past the simulation horizon and was never enqueued
/// (it counts into both `scheduled` and `expired`). [`Self::conserves`]
/// checks the invariant; a property test in
/// `crates/sim/tests/properties.rs` enforces it under random
/// schedule/cancel/pop/clear interleavings in both regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events accepted by `schedule`/`schedule_at`, plus expired draws.
    pub scheduled: u64,
    /// Events popped and delivered (`pop` / `pop_due`).
    pub fired: u64,
    /// Events removed without firing: `cancel`, `cancel_all`, and entries
    /// drained by `clear`.
    pub cancelled: u64,
    /// Drawn delays past the horizon, never enqueued (`note_expired`).
    pub expired: u64,
    /// Linear-to-heap regime crossings (`heapify` invocations).
    pub heap_crossings: u64,
    /// High-water mark of simultaneously pending events.
    pub depth_high_water: u64,
}

impl QueueStats {
    /// Checks the conservation invariant against the live queue length.
    pub fn conserves(&self, pending: usize) -> bool {
        self.scheduled == self.fired + self.cancelled + self.expired + pending as u64
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking, O(1)
/// small-queue scheduling, and O(log n) in-place cancellation.
///
/// # Ordering contract
///
/// [`Self::pop`] returns events in ascending `(time, seq)` order, where
/// `seq` is the per-queue schedule counter: **events scheduled for the same
/// instant pop in the order they were scheduled** (FIFO). This is the exact
/// tie-break of [`crate::engine::EventQueue`], bit for bit — a simulation
/// draws its random numbers in pop order, so swapping the queue
/// implementation never changes an estimate. The equivalence (pop
/// sequences, `len`, `peek_time`, and cancel results, under random
/// schedule/cancel/pop/clear interleavings) is enforced by a property test
/// in `crates/sim/tests/properties.rs`.
///
/// # Reuse discipline
///
/// [`Self::clear`] resets the queue to time zero while retaining every
/// allocation, and invalidates all outstanding handles (see
/// [`IndexedEventHandle`]) — the hot-loop reset for simulators replaying
/// many missions on one queue.
///
/// # Examples
///
/// ```
/// use availsim_sim::indexed_queue::IndexedEventQueue;
///
/// # fn main() -> Result<(), availsim_sim::SimError> {
/// let mut q: IndexedEventQueue<&str> = IndexedEventQueue::new();
/// q.schedule(10.0, "disk-failure")?;
/// let scrub = q.schedule(2.0, "scrub")?;
/// q.schedule(5.0, "service")?;
/// assert!(q.cancel(scrub));
/// assert!(!q.cancel(scrub), "cancelling twice is a no-op");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (5.0, "service"));
/// assert_eq!(q.now(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IndexedEventQueue<E> {
    entries: Vec<Entry<E>>,
    slots: Vec<Slot>,
    /// Reusable slot ids.
    free: Vec<u32>,
    /// Schedule counter within the current clear cycle (the FIFO
    /// tie-break); [`Self::clear`] resets it and bumps `clear_epoch`.
    /// 64-bit so it cannot wrap within a mission — a wrapped counter
    /// could collide with [`FREE_SLOT`] and let a stale handle evict a
    /// live event.
    next_seq: u64,
    /// Number of [`Self::clear`] calls so far; stamped into handles so a
    /// pre-clear handle can never alias a post-clear event.
    clear_epoch: u64,
    now: f64,
    /// Index of the minimum entry in the linear regime ([`NO_MIN`] when
    /// empty); unused in the heap regime, where the minimum is the root.
    min_pos: u32,
    /// Whether the entry array is currently heap-ordered. Transitions
    /// linear → heap when a schedule exceeds [`LINEAR_MAX`]; only
    /// [`Self::clear`] returns to the linear regime.
    is_heap: bool,
    /// Cumulative traffic counters (see [`QueueStats`]); survive
    /// [`Self::clear`].
    stats: QueueStats,
}

impl<E> Default for IndexedEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> IndexedEventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        IndexedEventQueue {
            entries: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            clear_epoch: 0,
            now: 0.0,
            min_pos: NO_MIN,
            is_heap: false,
            stats: QueueStats::default(),
        }
    }

    /// Creates an empty queue at time zero with room for `n` pending events
    /// before any buffer reallocates.
    pub fn with_capacity(n: usize) -> Self {
        IndexedEventQueue {
            entries: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            next_seq: 0,
            clear_epoch: 0,
            now: 0.0,
            min_pos: NO_MIN,
            is_heap: false,
            stats: QueueStats::default(),
        }
    }

    /// Resets the queue to an empty state at time zero while **retaining**
    /// all allocated capacity — the hot-loop reset used by simulators that
    /// replay many missions on one queue without per-mission allocations.
    ///
    /// All outstanding handles are invalidated: slots and sequence numbers
    /// are recycled but the clear epoch advances, so a pre-reset
    /// [`IndexedEventHandle`] is rejected by [`Self::cancel`] (returns
    /// `false`) and can never cancel, or alias, an event scheduled after
    /// the reset.
    pub fn clear(&mut self) {
        // Entries wiped without firing count as cancelled, keeping the
        // conservation invariant across clear cycles.
        self.stats.cancelled += self.entries.len() as u64;
        self.entries.clear();
        self.slots.clear();
        self.free.clear();
        self.next_seq = 0;
        self.clear_epoch += 1;
        self.now = 0.0;
        self.min_pos = NO_MIN;
        self.is_heap = false;
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events. Exact: cancelled events leave the array
    /// immediately.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative traffic counters since construction (they survive
    /// [`Self::clear`]).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Records a drawn event delay that landed past the simulation horizon
    /// and was therefore never enqueued — the engines' sample-then-check
    /// idiom. Counts into both `scheduled` and `expired` so the
    /// conservation invariant covers every draw.
    #[inline]
    pub fn note_expired(&mut self) {
        self.stats.scheduled += 1;
        self.stats.expired += 1;
    }

    /// Schedules an event `delay` time units from now.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for negative or NaN delays.
    #[inline]
    pub fn schedule(&mut self, delay: f64, event: E) -> Result<IndexedEventHandle> {
        if delay < 0.0 || !delay.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "invalid event delay {delay}"
            )));
        }
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules an event at an absolute time, which must not lie in the
    /// past.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for times before `now` or NaN.
    #[inline]
    pub fn schedule_at(&mut self, time: f64, event: E) -> Result<IndexedEventHandle> {
        if time < self.now || !time.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "event time {time} is before current time {}",
                self.now
            )));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.entries.len() as u32;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Slot { seq, pos };
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { seq, pos });
                s
            }
        };
        self.entries.push(Entry {
            time,
            seq,
            slot,
            event,
        });
        self.stats.scheduled += 1;
        self.stats.depth_high_water = self.stats.depth_high_water.max(self.entries.len() as u64);
        if self.is_heap {
            self.sift_up(pos as usize);
        } else if self.entries.len() <= LINEAR_MAX {
            if self.min_pos == NO_MIN
                || self.entries[pos as usize].before(&self.entries[self.min_pos as usize])
            {
                self.min_pos = pos;
            }
        } else {
            self.heapify();
        }
        Ok(IndexedEventHandle {
            slot,
            seq,
            epoch: self.clear_epoch,
        })
    }

    /// Cancels a scheduled event **in place**, removing it from the array
    /// immediately. Returns `true` if the event was still pending; a stale
    /// handle (already popped, already cancelled, or from before a
    /// [`Self::clear`]) returns `false` and changes nothing.
    pub fn cancel(&mut self, handle: IndexedEventHandle) -> bool {
        let slot = handle.slot as usize;
        if handle.epoch != self.clear_epoch
            || self.slots.get(slot).map(|s| s.seq) != Some(handle.seq)
        {
            return false;
        }
        let pos = self.slots[slot].pos as usize;
        self.stats.cancelled += 1;
        self.release_slot(handle.slot);
        if self.is_heap {
            let last = self
                .entries
                .pop()
                .expect("indexed slot implies a live entry");
            if pos < self.entries.len() {
                self.entries[pos] = last;
                self.slots[self.entries[pos].slot as usize].pos = pos as u32;
                // The moved entry came from the bottom; it usually goes
                // further down, unless it now beats its parent.
                self.sift_up(pos);
                self.sift_down(pos);
            }
        } else {
            let was_last = self.entries.len() - 1;
            self.entries.swap_remove(pos);
            if pos < self.entries.len() {
                self.slots[self.entries[pos].slot as usize].pos = pos as u32;
            }
            if pos == self.min_pos as usize {
                self.min_pos = self.scan_min();
            } else if self.min_pos as usize == was_last {
                // The minimum was the entry moved into the hole.
                self.min_pos = pos as u32;
            }
        }
        true
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        if self.is_heap {
            self.pop_root()
        } else if self.min_pos == NO_MIN {
            None
        } else {
            Some(self.remove_linear_min())
        }
    }

    /// [`Self::pop`], but only if the next event is due at or before
    /// `horizon` — the single-probe form of the peek-compare-pop idiom that
    /// dominates mission loops. Returns `None` (clock untouched) when the
    /// queue is empty or the next event lies beyond the horizon.
    #[inline]
    pub fn pop_due(&mut self, horizon: f64) -> Option<(f64, E)> {
        if self.is_heap {
            match self.entries.first() {
                Some(e) if e.time <= horizon => self.pop_root(),
                _ => None,
            }
        } else if self.min_pos == NO_MIN || self.entries[self.min_pos as usize].time > horizon {
            None
        } else {
            Some(self.remove_linear_min())
        }
    }

    /// Cancels **every** pending event in one pass, without touching the
    /// clock — the bulk form of [`Self::cancel`] for simulators whose
    /// state transitions void all armed events at once (e.g. a race of
    /// exponentials where one exit fired). All outstanding handles become
    /// stale. Unlike [`Self::clear`], `now` and the schedule counter are
    /// preserved, so subsequent relative schedules still measure from the
    /// current simulation time.
    pub fn cancel_all(&mut self) {
        self.stats.cancelled += self.entries.len() as u64;
        for e in self.entries.drain(..) {
            self.slots[e.slot as usize].seq = FREE_SLOT;
            self.free.push(e.slot);
        }
        self.min_pos = NO_MIN;
    }

    /// Timestamp of the next pending event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        if self.is_heap {
            self.entries.first().map(|e| e.time)
        } else if self.min_pos == NO_MIN {
            None
        } else {
            Some(self.entries[self.min_pos as usize].time)
        }
    }

    /// Removes the heap root (the minimum in the heap regime).
    fn pop_root(&mut self) -> Option<(f64, E)> {
        let last = self.entries.pop()?;
        let entry = if self.entries.is_empty() {
            last
        } else {
            let root = std::mem::replace(&mut self.entries[0], last);
            self.slots[self.entries[0].slot as usize].pos = 0;
            self.sift_down(0);
            root
        };
        self.release_slot(entry.slot);
        self.stats.fired += 1;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Removes the tracked minimum in the linear regime and rescans for
    /// the next one. The caller guarantees `min_pos` is valid.
    fn remove_linear_min(&mut self) -> (f64, E) {
        let pos = self.min_pos as usize;
        let entry = self.entries.swap_remove(pos);
        if pos < self.entries.len() {
            self.slots[self.entries[pos].slot as usize].pos = pos as u32;
        }
        self.release_slot(entry.slot);
        self.stats.fired += 1;
        self.min_pos = self.scan_min();
        self.now = entry.time;
        (entry.time, entry.event)
    }

    /// Index of the `(time, seq)`-minimum entry, or [`NO_MIN`] when empty.
    /// Deterministic: the strict total order has no equal keys, so the
    /// result does not depend on the array's incidental layout.
    fn scan_min(&self) -> u32 {
        let mut it = self.entries.iter().enumerate();
        let Some((_, first)) = it.next() else {
            return NO_MIN;
        };
        let mut best = 0usize;
        let mut best_entry = first;
        for (i, e) in it {
            if e.before(best_entry) {
                best = i;
                best_entry = e;
            }
        }
        best as u32
    }

    /// Marks `slot` free and recycles it.
    #[inline]
    fn release_slot(&mut self, slot: u32) {
        self.slots[slot as usize].seq = FREE_SLOT;
        self.free.push(slot);
    }

    /// Establishes the 4-ary heap order over the whole entry array and
    /// enters the heap regime (left only via [`Self::clear`]).
    fn heapify(&mut self) {
        self.stats.heap_crossings += 1;
        self.is_heap = true;
        self.min_pos = NO_MIN;
        let len = self.entries.len();
        // Positions were maintained in the linear regime and sifts repair
        // them on every swap, so only the order needs establishing.
        for i in (0..len / ARITY + 1).rev() {
            self.sift_down(i);
        }
    }

    /// Moves the entry at `pos` up until its parent is not after it.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if self.entries[pos].before(&self.entries[parent]) {
                self.entries.swap(pos, parent);
                self.slots[self.entries[pos].slot as usize].pos = pos as u32;
                self.slots[self.entries[parent].slot as usize].pos = parent as u32;
                pos = parent;
            } else {
                break;
            }
        }
    }

    /// Moves the entry at `pos` down until no child precedes it.
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.entries.len();
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + ARITY).min(len);
            for c in first_child + 1..last_child {
                if self.entries[c].before(&self.entries[best]) {
                    best = c;
                }
            }
            if self.entries[best].before(&self.entries[pos]) {
                self.entries.swap(pos, best);
                self.slots[self.entries[pos].slot as usize].pos = pos as u32;
                self.slots[self.entries[best].slot as usize].pos = best as u32;
                pos = best;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = IndexedEventQueue::new();
        q.schedule(3.0, "c").unwrap();
        q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        assert_eq!(q.pop().unwrap(), (1.0, "a"));
        assert_eq!(q.pop().unwrap(), (2.0, "b"));
        assert_eq!(q.pop().unwrap(), (3.0, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = IndexedEventQueue::new();
        q.schedule(1.0, "first").unwrap();
        q.schedule(1.0, "second").unwrap();
        q.schedule(1.0, "third").unwrap();
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn ties_break_fifo_across_the_heap_threshold() {
        let mut q = IndexedEventQueue::new();
        for i in 0..(LINEAR_MAX as u64 + 20) {
            q.schedule(1.0, i).unwrap();
        }
        for i in 0..(LINEAR_MAX as u64 + 20) {
            assert_eq!(q.pop().unwrap(), (1.0, i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = IndexedEventQueue::new();
        q.schedule(5.0, ()).unwrap();
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule(1.0, ()).unwrap();
        assert_eq!(q.pop().unwrap().0, 6.0);
    }

    #[test]
    fn rejects_bad_times() {
        let mut q: IndexedEventQueue<()> = IndexedEventQueue::new();
        assert!(q.schedule(-1.0, ()).is_err());
        assert!(q.schedule(f64::NAN, ()).is_err());
        assert!(q.schedule(f64::INFINITY, ()).is_err());
        q.schedule(10.0, ()).unwrap();
        q.pop();
        assert!(q.schedule_at(5.0, ()).is_err());
    }

    #[test]
    fn cancellation_removes_events_immediately() {
        let mut q = IndexedEventQueue::new();
        let h1 = q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel is a no-op");
        // No tombstones: the entry is gone from the array right away.
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_of_a_popped_handle_is_false_even_after_slot_reuse() {
        let mut q = IndexedEventQueue::new();
        let h = q.schedule(1.0, "a").unwrap();
        q.pop();
        // The slot is recycled for a new event; the old handle must not
        // reach it.
        let h2 = q.schedule(2.0, "b").unwrap();
        assert!(!q.cancel(h));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h2));
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancelling_the_minimum_rescans_correctly() {
        let mut q = IndexedEventQueue::new();
        let h1 = q.schedule(1.0, "min").unwrap();
        q.schedule(3.0, "later").unwrap();
        q.schedule(2.0, "mid").unwrap();
        assert!(q.cancel(h1));
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn cancel_interior_entry_keeps_order_in_both_regimes() {
        for count in [24u64, 200] {
            let mut q = IndexedEventQueue::new();
            let mut handles = Vec::new();
            for i in 0..count {
                let t = ((i * 13) % count) as f64;
                handles.push((t, q.schedule_at(t, i).unwrap()));
            }
            // Cancel every third entry, including interior nodes.
            let mut expect: Vec<f64> = Vec::new();
            for (k, (t, h)) in handles.iter().enumerate() {
                if k % 3 == 0 {
                    assert!(q.cancel(*h));
                } else {
                    expect.push(*t);
                }
            }
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut got = Vec::new();
            while let Some((t, _)) = q.pop() {
                got.push(t);
            }
            assert_eq!(got, expect, "count {count}");
        }
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = IndexedEventQueue::new();
        q.schedule(1.0, "a").unwrap();
        q.schedule(5.0, "b").unwrap();
        assert_eq!(q.pop_due(2.0).unwrap(), (1.0, "a"));
        assert!(q.pop_due(2.0).is_none());
        assert_eq!(q.now(), 1.0, "a refused pop leaves the clock alone");
        assert_eq!(q.pop_due(5.0).unwrap(), (5.0, "b"));
        assert!(q.pop_due(f64::INFINITY).is_none());
    }

    #[test]
    fn clear_resets_clock_events_and_invalidates_handles() {
        let mut q = IndexedEventQueue::with_capacity(8);
        let stale = q.schedule(5.0, "a").unwrap();
        q.schedule(7.0, "b").unwrap();
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.clear();
        assert_eq!(q.now(), 0.0);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // Relative scheduling measures from the reset clock, and stale
        // handles can neither cancel nor alias post-reset events.
        let h = q.schedule(3.0, "new").unwrap();
        q.schedule(4.0, "new2").unwrap();
        assert!(!q.cancel(stale));
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert_eq!(q.pop().unwrap(), (4.0, "new2"));
    }

    #[test]
    fn clear_returns_a_heapified_queue_to_the_linear_regime() {
        let mut q = IndexedEventQueue::new();
        for i in 0..(LINEAR_MAX as u64 * 2) {
            q.schedule_at(i as f64, i).unwrap();
        }
        assert!(q.is_heap);
        q.clear();
        assert!(!q.is_heap);
        q.schedule(2.0, 100).unwrap();
        q.schedule(1.0, 200).unwrap();
        assert_eq!(q.pop().unwrap(), (1.0, 200));
        assert_eq!(q.pop().unwrap(), (2.0, 100));
    }

    #[test]
    fn reuse_cycles_keep_fifo_ties_and_counts() {
        let mut q = IndexedEventQueue::new();
        for _ in 0..3 {
            q.schedule(1.0, "first").unwrap();
            q.schedule(1.0, "second").unwrap();
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop().unwrap().1, "first");
            assert_eq!(q.pop().unwrap().1, "second");
            q.clear();
        }
    }

    #[test]
    fn many_events_stay_sorted_with_interleaved_cancels() {
        let mut q = IndexedEventQueue::new();
        let mut live = Vec::new();
        for i in 0..1000u64 {
            let t = ((i * 7919) % 1000) as f64;
            let h = q.schedule_at(t, i).unwrap();
            if i % 5 == 0 {
                assert!(q.cancel(h));
            } else {
                live.push(t);
            }
        }
        assert_eq!(q.len(), live.len());
        let mut prev = -1.0;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
            n += 1;
        }
        assert_eq!(n, live.len());
    }

    #[test]
    fn stats_track_traffic_and_conserve_across_clear() {
        let mut q = IndexedEventQueue::new();
        let h = q.schedule(1.0, "a").unwrap();
        q.schedule(2.0, "b").unwrap();
        q.schedule(3.0, "c").unwrap();
        q.note_expired(); // a draw past the horizon, never enqueued
        assert!(q.cancel(h));
        assert_eq!(q.pop().unwrap().1, "b");
        let s = q.stats();
        assert_eq!(s.scheduled, 4);
        assert_eq!(s.fired, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.expired, 1);
        assert_eq!(s.depth_high_water, 3);
        assert_eq!(s.heap_crossings, 0);
        assert!(s.conserves(q.len()));
        // `clear` counts the wiped entry as cancelled and keeps the
        // cumulative totals.
        q.clear();
        let s = q.stats();
        assert_eq!(s.cancelled, 2);
        assert!(s.conserves(0));
        // Crossing the linear threshold registers exactly once per cycle.
        for i in 0..=(LINEAR_MAX as u64) {
            q.schedule_at(i as f64, "x").unwrap();
        }
        assert!(q.is_heap);
        assert_eq!(q.stats().heap_crossings, 1);
        assert_eq!(q.stats().depth_high_water, LINEAR_MAX as u64 + 1);
        q.cancel_all();
        assert!(q.stats().conserves(q.len()));
    }

    #[test]
    fn mixed_schedule_pop_traffic_around_the_threshold_stays_sorted() {
        // Drive the fill level back and forth across LINEAR_MAX; once
        // heapified the queue must stay correct as it drains and refills.
        let mut q = IndexedEventQueue::new();
        let mut scheduled = 0u64;
        let mut popped = Vec::new();
        for round in 0..6 {
            for i in 0..(LINEAR_MAX as u64) {
                let t = 1000.0 * round as f64 + ((i * 37) % 100) as f64 + q.now();
                q.schedule_at(t, scheduled).unwrap();
                scheduled += 1;
            }
            for _ in 0..(LINEAR_MAX / 2) {
                popped.push(q.pop().unwrap().0);
            }
        }
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        assert_eq!(popped.len(), scheduled as usize);
        for w in popped.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
