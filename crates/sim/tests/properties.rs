//! Property-based tests for the simulation kernel.

use availsim_sim::distributions::{
    Deterministic, Empirical, Exponential, Gamma, Lifetime, LogNormal, UniformDist, Weibull,
};
use availsim_sim::engine::EventQueue;
use availsim_sim::indexed_queue::IndexedEventQueue;
use availsim_sim::rng::SimRng;
use availsim_sim::stats::{ks_test, t_interval, RunningStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exponential_cdf_quantile_roundtrip(rate in 1e-6f64..1e3, p in 1e-6f64..0.999_999) {
        let d = Exponential::new(rate).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn weibull_cdf_quantile_roundtrip(
        scale in 1e-3f64..1e7,
        shape in 0.3f64..5.0,
        p in 1e-6f64..0.999_999,
    ) {
        let d = Weibull::new(scale, shape).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-8, "cdf(q({p})) = {}", d.cdf(x));
    }

    #[test]
    fn lognormal_cdf_quantile_roundtrip(
        mu in -3.0f64..5.0,
        sigma in 0.05f64..2.0,
        p in 1e-5f64..0.999_99,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn cdf_is_monotone_for_all_families(
        rate in 1e-3f64..10.0,
        shape in 0.5f64..4.0,
        xs in proptest::collection::vec(0.0f64..100.0, 2..20),
    ) {
        let dists: Vec<Box<dyn Lifetime>> = vec![
            Box::new(Exponential::new(rate).unwrap()),
            Box::new(Weibull::new(1.0 / rate, shape).unwrap()),
            Box::new(Gamma::new(shape, rate).unwrap()),
            Box::new(UniformDist::new(0.0, 50.0).unwrap()),
        ];
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for d in &dists {
            let mut prev = -1.0;
            for &x in &sorted {
                let c = d.cdf(x);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c >= prev - 1e-12, "{} not monotone at {x}", d.name());
                prev = c;
            }
        }
    }

    #[test]
    fn samples_are_nonnegative_and_finite(seed in any::<u64>(), rate in 1e-6f64..1e3) {
        let mut rng = SimRng::seed_from(seed);
        let dists: Vec<Box<dyn Lifetime>> = vec![
            Box::new(Exponential::new(rate).unwrap()),
            Box::new(Weibull::new(1.0 / rate, 1.2).unwrap()),
            Box::new(Gamma::new(0.8, rate).unwrap()),
            Box::new(LogNormal::new(0.0, 1.0).unwrap()),
            Box::new(Deterministic::new(1.0 / rate).unwrap()),
        ];
        for d in &dists {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x >= 0.0 && x.is_finite(), "{} produced {x}", d.name());
            }
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), n in 1usize..200) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn running_stats_merge_is_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    #[test]
    fn event_queue_pops_in_order(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i).unwrap();
        }
        let mut prev = 0.0;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn indexed_queue_is_observably_identical_to_the_reference_queue(
        // Operation stream: each step is (op selector, time selector).
        // Times are drawn from a tiny grid so FIFO tie-breaking is
        // exercised constantly, and the op mix crosses the linear→heap
        // threshold when the schedule share dominates.
        ops in proptest::collection::vec((0u8..100, 0u8..8), 1..400),
        seed in any::<u64>(),
    ) {
        let mut reference: EventQueue<u64> = EventQueue::new();
        let mut indexed: IndexedEventQueue<u64> = IndexedEventQueue::new();
        let mut rng = SimRng::seed_from(seed);
        // Live and dead handle pools, kept in lockstep; dead handles
        // (popped, cancelled, or pre-clear) must behave identically too.
        let mut live = Vec::new();
        let mut dead = Vec::new();
        let mut payload = 0u64;

        for &(op, t) in &ops {
            match op {
                // Schedule (majority share so queues actually fill).
                0..=54 => {
                    let delay = f64::from(t);
                    let h_ref = reference.schedule(delay, payload).unwrap();
                    let h_idx = indexed.schedule(delay, payload).unwrap();
                    live.push((h_ref, h_idx));
                    payload += 1;
                }
                // Pop.
                55..=79 => {
                    prop_assert_eq!(reference.pop(), indexed.pop());
                }
                // Cancel a random live handle.
                80..=89 => {
                    if !live.is_empty() {
                        let k = rng.next_bounded(live.len() as u64) as usize;
                        let (h_ref, h_idx) = live.swap_remove(k);
                        prop_assert_eq!(reference.cancel(h_ref), indexed.cancel(h_idx));
                        dead.push((h_ref, h_idx));
                    }
                }
                // Cancel a dead handle (already popped/cancelled/stale):
                // both queues must refuse identically.
                90..=94 => {
                    if !dead.is_empty() {
                        let k = rng.next_bounded(dead.len() as u64) as usize;
                        let (h_ref, h_idx) = dead[k];
                        prop_assert_eq!(reference.cancel(h_ref), indexed.cancel(h_idx));
                    }
                }
                // Clear: all outstanding handles become stale.
                _ => {
                    reference.clear();
                    indexed.clear();
                    dead.append(&mut live);
                }
            }
            // Observations agree after every step. (The reference queue's
            // `len` discounts lazy tombstones, so this also pins the
            // indexed queue's exact-count semantics.)
            prop_assert_eq!(reference.len(), indexed.len());
            prop_assert_eq!(reference.is_empty(), indexed.is_empty());
            prop_assert_eq!(reference.peek_time(), indexed.peek_time());
            prop_assert_eq!(
                reference.now().to_bits(),
                indexed.now().to_bits(),
                "clocks diverged"
            );
        }
        // Drain: the full remaining pop sequences (time, payload) match.
        loop {
            let a = reference.pop();
            let b = indexed.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn indexed_queue_stats_conserve_under_random_interleavings(
        // Same op-selector style as the equivalence test above: schedule
        // dominates so the queue crosses the linear→heap threshold, with
        // pops, live/dead cancels, bulk cancels, expired draws, and clears
        // mixed in. After every step the traffic counters must satisfy
        // scheduled == fired + cancelled + expired + len().
        ops in proptest::collection::vec((0u8..100, 0u8..8), 1..400),
        seed in any::<u64>(),
    ) {
        // Two starting fills: empty (linear regime) and past the linear
        // threshold (heap regime from the first step), so the invariant is
        // exercised in both regimes on every generated op stream.
        for preload in [0usize, 40] {
        let mut q: IndexedEventQueue<u64> = IndexedEventQueue::new();
        let mut rng = SimRng::seed_from(seed);
        let mut live = Vec::new();
        let mut dead = Vec::new();
        let mut payload = 0u64;
        for _ in 0..preload {
            live.push(q.schedule(f64::from(payload as u8), payload).unwrap());
            payload += 1;
        }
        prop_assert_eq!(q.stats().heap_crossings > 0, preload > 32);

        for &(op, t) in &ops {
            match op {
                // Schedule (majority share so the heap regime is reached).
                0..=49 => {
                    live.push(q.schedule(f64::from(t), payload).unwrap());
                    payload += 1;
                }
                // Pop due / pop.
                50..=69 => {
                    if op % 2 == 0 {
                        let _ = q.pop();
                    } else {
                        let _ = q.pop_due(q.now() + f64::from(t));
                    }
                }
                // A drawn delay past the horizon, never enqueued.
                70..=76 => q.note_expired(),
                // Cancel a random live handle.
                77..=86 => {
                    if !live.is_empty() {
                        let k = rng.next_bounded(live.len() as u64) as usize;
                        let h = live.swap_remove(k);
                        // The handle may have been popped already.
                        q.cancel(h);
                        dead.push(h);
                    }
                }
                // Cancel a dead handle: must not perturb the counters.
                87..=90 => {
                    if !dead.is_empty() {
                        let k = rng.next_bounded(dead.len() as u64) as usize;
                        let before = q.stats();
                        prop_assert!(!q.cancel(dead[k]));
                        prop_assert_eq!(before, q.stats());
                    }
                }
                // Bulk cancel (counts every pending entry).
                91..=94 => {
                    q.cancel_all();
                    dead.append(&mut live);
                }
                // Clear: wiped entries count as cancelled, totals survive.
                _ => {
                    q.clear();
                    dead.append(&mut live);
                }
            }
            prop_assert!(
                q.stats().conserves(q.len()),
                "conservation broken: {:?} with {} pending",
                q.stats(),
                q.len()
            );
            prop_assert!(q.stats().depth_high_water >= q.len() as u64);
        }
        }
    }

    #[test]
    fn indexed_queue_pop_due_is_peek_compare_pop(
        times in proptest::collection::vec(0u8..16, 1..80),
        horizon in 0u8..16,
    ) {
        // `pop_due(h)` must behave exactly like the engine's historical
        // peek / compare / pop idiom on the reference queue.
        let mut reference: EventQueue<usize> = EventQueue::new();
        let mut indexed: IndexedEventQueue<usize> = IndexedEventQueue::new();
        let horizon = f64::from(horizon);
        for (i, &t) in times.iter().enumerate() {
            reference.schedule(f64::from(t), i).unwrap();
            indexed.schedule(f64::from(t), i).unwrap();
        }
        loop {
            let expected = match reference.peek_time() {
                Some(t) if t <= horizon => reference.pop(),
                _ => None,
            };
            let got = indexed.pop_due(horizon);
            prop_assert_eq!(expected, got);
            if got.is_none() {
                break;
            }
        }
        prop_assert_eq!(reference.len(), indexed.len());
    }

    #[test]
    fn empirical_quantiles_stay_in_sample_range(
        samples in proptest::collection::vec(0.0f64..1e4, 1..50),
        p in 0.01f64..0.99,
    ) {
        let d = Empirical::from_samples(&samples).unwrap();
        let q = d.quantile(p).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12);
    }
}

/// Non-proptest statistical smoke test: KS on each closed-form sampler.
#[test]
fn ks_validates_every_sampler() {
    let dists: Vec<Box<dyn Lifetime>> = vec![
        Box::new(Exponential::new(0.37).unwrap()),
        Box::new(Weibull::new(4.0, 1.48).unwrap()),
        Box::new(LogNormal::new(1.0, 0.7).unwrap()),
        Box::new(Gamma::new(2.2, 0.9).unwrap()),
        Box::new(UniformDist::new(1.0, 9.0).unwrap()),
    ];
    let mut rng = SimRng::seed_from(20_240_601);
    for d in &dists {
        let samples: Vec<f64> = (0..4_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&samples, d.as_ref()).unwrap();
        assert!(r.p_value > 0.005, "{} failed KS: p={}", d.name(), r.p_value);
    }
}

// Numerical-invariant suite for the Monte-Carlo estimator machinery: an
// availability estimate is a probability, and its confidence interval must
// tighten as iterations grow (the paper's 1/sqrt(n) error law).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mc_availability_estimate_is_a_probability_and_ci_shrinks(
        seed in any::<u64>(),
        p in 0.05f64..0.95,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut small = RunningStats::new();
        let mut big = RunningStats::new();
        for i in 0..4096u64 {
            let up = if rng.bernoulli(p) { 1.0 } else { 0.0 };
            if i < 256 {
                small.push(up);
            }
            big.push(up);
        }
        for stats in [&small, &big] {
            let a = stats.mean();
            prop_assert!((0.0..=1.0).contains(&a), "estimate {a} outside [0,1]");
        }

        let ci_small = t_interval(&small, 0.99).unwrap();
        let ci_big = t_interval(&big, 0.99).unwrap();
        prop_assert!(ci_small.half_width.is_finite() && ci_small.half_width >= 0.0);
        prop_assert!(ci_big.half_width.is_finite() && ci_big.half_width >= 0.0);
        // 16x the iterations must shrink the half-width well below the
        // trivial bound (asymptotic factor 4x). The absolute slack absorbs
        // the rare stream whose first 256 draws have near-zero variance
        // (hw_small ~ 0 while hw_big is honest), so the property stays safe
        // under a real randomly-seeded proptest, not just the vendored
        // deterministic shim.
        prop_assert!(
            ci_big.half_width <= ci_small.half_width * 0.8 + 0.01,
            "CI failed to shrink: {} -> {}",
            ci_small.half_width,
            ci_big.half_width
        );
        // Both intervals, clipped to [0,1], still cover the true p most of
        // the time; at 99% confidence a deterministic seed stream makes this
        // effectively always true, so assert coverage of the wide interval.
        prop_assert!(
            ci_small.contains(p) || ci_big.contains(p),
            "neither CI covers p={p}: small {ci_small}, big {ci_big}"
        );
    }
}
