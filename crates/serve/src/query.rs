//! Query parsing, validation, and the canonical cache key.
//!
//! A query is one availability question: geometry, rates, policy, and —
//! for Monte-Carlo — the estimator settings and seed. The wire format is a
//! flat JSON object with strict unknown-key rejection (a typo must be a
//! `400`, not a silently different model).
//!
//! # The canonical key
//!
//! [`Query::canonical_key`] serialises exactly the fields that can change
//! an estimate bit: model, policy, geometry, λ/HEP (as `f64` bit
//! patterns), seed, iterations/horizon/confidence, the variance-reduction
//! scheme, and the `[lse]` / `[fleet]` couplings. The determinism
//! contracts make everything else — thread count, deadline — a pure
//! presentation knob, so those fields are deliberately **absent**: two
//! queries that differ only in them share one cache line and one byte-
//! identical answer.

use crate::json::Json;
use availsim_core::mc::McVariance;
use availsim_exp::spec::{
    parse_geometry_label, FleetSettings, LseSettings, McSettings, ModelKind, Policy, Scenario,
    TelemetrySettings,
};
use availsim_hra::DependenceLevel;
use availsim_storage::{FailoverPolicy, RaidGeometry};

/// One parsed availability query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Solver backend (`"model"`; default `markov-conventional`).
    pub model: ModelKind,
    /// Replacement discipline (`"policy"`; defaults to the model's).
    pub policy: Policy,
    /// RAID geometry (`"raid"`, e.g. `"r5-7"`).
    pub raid: RaidGeometry,
    /// Disk failure rate λ per hour (`"lambda"`).
    pub lambda: f64,
    /// Human error probability (`"hep"`).
    pub hep: f64,
    /// Monte-Carlo seed (`"seed"`; default 0, exact models ignore it).
    pub seed: u64,
    /// Monte-Carlo settings (`"iterations"` / `"horizon_hours"` /
    /// `"confidence"` / `"variance"` + tuning, `"threads"`).
    pub mc: McSettings,
    /// Latent-sector-error exposure (`"lse"` object), if any.
    pub lse: Option<LseSettings>,
    /// Fleet couplings (`"fleet"` object), if any.
    pub fleet: Option<FleetSettings>,
    /// Per-request deadline in milliseconds (`"deadline_ms"`).
    /// Presentation-only: absent from the canonical key.
    pub deadline_ms: Option<u64>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            model: ModelKind::MarkovConventional,
            policy: Policy::Conventional,
            raid: parse_geometry_label("r5-3").expect("r5-3 is valid"),
            lambda: 1e-6,
            hep: 0.0,
            seed: 0,
            mc: McSettings::default(),
            lse: None,
            fleet: None,
            deadline_ms: None,
        }
    }
}

fn need_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

fn need_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn need_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.as_str()
        .ok_or_else(|| format!("`{key}` must be a string"))
}

impl Query {
    /// Parses a query from its JSON wire form.
    ///
    /// # Errors
    /// A client-facing message naming the offending key: unknown keys,
    /// wrong types, and out-of-vocabulary spellings are all rejected.
    pub fn from_json(doc: &Json) -> Result<Query, String> {
        let entries = doc
            .entries()
            .ok_or_else(|| "query body must be a JSON object".to_string())?;
        let mut q = Query::default();
        let mut explicit_policy = None;
        let mut variance = "naive".to_string();
        let mut bias = None;
        let mut levels = None;
        let mut effort = None;
        for (key, value) in entries {
            match key.as_str() {
                "model" => {
                    let s = need_str(value, key)?;
                    q.model = match s {
                        "markov-conventional" => ModelKind::MarkovConventional,
                        "markov-failover" => ModelKind::MarkovFailover,
                        "generic-k-of-n" => ModelKind::GenericKofN,
                        "mc" => ModelKind::Mc,
                        other => return Err(format!("unknown model `{other}`")),
                    };
                }
                "policy" => {
                    let s = need_str(value, key)?;
                    explicit_policy = Some(match s {
                        "conventional" => Policy::Conventional,
                        "failover" => Policy::Failover,
                        other => return Err(format!("unknown policy `{other}`")),
                    });
                }
                "raid" => q.raid = parse_geometry_label(need_str(value, key)?)?,
                "lambda" => q.lambda = need_f64(value, key)?,
                "hep" => q.hep = need_f64(value, key)?,
                "seed" => q.seed = need_u64(value, key)?,
                "iterations" => q.mc.iterations = need_u64(value, key)?,
                "horizon_hours" => q.mc.horizon_hours = need_f64(value, key)?,
                "confidence" => q.mc.confidence = need_f64(value, key)?,
                "variance" => variance = need_str(value, key)?.to_string(),
                "bias" => bias = Some(need_f64(value, key)?),
                "levels" => {
                    let v = need_u64(value, key)?;
                    levels =
                        Some(u32::try_from(v).map_err(|_| format!("`levels` {v} is too large"))?);
                }
                "effort" => effort = Some(need_u64(value, key)?),
                "threads" => {
                    // 0 is the documented "auto" spelling — the same
                    // contract as `--threads 0` and `[mc] threads = 0`.
                    let v = need_u64(value, key)?;
                    q.mc.threads =
                        usize::try_from(v).map_err(|_| format!("`threads` {v} is too large"))?;
                }
                "deadline_ms" => q.deadline_ms = Some(need_u64(value, key)?),
                "lse" => q.lse = Some(parse_lse(value)?),
                "fleet" => q.fleet = Some(parse_fleet(value)?),
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        q.mc.variance = match variance.as_str() {
            "naive" => {
                if bias.is_some() || levels.is_some() || effort.is_some() {
                    return Err("`bias`/`levels`/`effort` require a non-naive variance".into());
                }
                McVariance::Naive
            }
            "failure-biasing" => McVariance::FailureBiasing {
                bias: bias.unwrap_or(McVariance::DEFAULT_BIAS),
            },
            "splitting" => McVariance::Splitting {
                levels: levels.unwrap_or(McVariance::DEFAULT_LEVELS),
                effort: effort.unwrap_or(McVariance::DEFAULT_EFFORT),
            },
            other => return Err(format!("unknown variance `{other}`")),
        };
        q.policy = explicit_policy.unwrap_or_else(|| q.model.default_policy());
        Ok(q)
    }

    /// Whether the query solves an exact CTMC (cheap, bypasses the MC
    /// job queue entirely).
    pub fn is_exact(&self) -> bool {
        self.model != ModelKind::Mc
    }

    /// The single-cell scenario this query describes, with engine
    /// telemetry enabled so every answer carries its counters.
    pub fn to_scenario(&self) -> Scenario {
        Scenario {
            name: "serve".into(),
            seed: self.seed,
            model: self.model,
            lambda: vec![self.lambda],
            hep: vec![self.hep],
            raid: vec![self.raid],
            policy: vec![self.policy],
            mc: self.mc,
            fleet: self.fleet,
            lse: self.lse,
            telemetry: TelemetrySettings {
                metrics: Some("serve".into()),
                ..TelemetrySettings::default()
            },
            ..Scenario::default()
        }
    }

    /// Serialises every estimator-relevant field (and nothing else) into
    /// a canonical string. Floats are encoded as their IEEE-754 bit
    /// patterns, so `1e-5` and `0.00001` collide exactly when the bits do.
    pub fn canonical_key(&self) -> String {
        let f = |v: f64| format!("{:016x}", v.to_bits());
        let variance = match self.mc.variance {
            McVariance::Naive => "naive".to_string(),
            McVariance::FailureBiasing { bias } => format!("fb:{}", f(bias)),
            McVariance::Splitting { levels, effort } => format!("split:{levels}:{effort}"),
        };
        let lse = match self.lse {
            Some(l) => format!("{}:{}", f(l.lse_rate), f(l.scrub_interval_hours)),
            None => "-".to_string(),
        };
        let fleet = match &self.fleet {
            Some(fl) => {
                let opt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
                let cap = match fl.failover_capacity {
                    None => "-".to_string(),
                    Some(None) => "inf".to_string(),
                    Some(Some(k)) => k.to_string(),
                };
                format!(
                    "{}:{}:{}:{}:{}:{}:{}:{}",
                    fl.arrays,
                    opt(fl.repairmen),
                    fl.dependence.name(),
                    opt(fl.domain_arrays),
                    fl.domain_rate.map_or("-".to_string(), f),
                    cap,
                    fl.failover_policy.as_str(),
                    fl.failback_rate.map_or("-".to_string(), f),
                )
            }
            None => "-".to_string(),
        };
        format!(
            "model={};policy={};raid={};lambda={};hep={};seed={};iter={};horizon={};conf={};var={};lse={};fleet={}",
            self.model.as_str(),
            self.policy.as_str(),
            self.raid.label(),
            f(self.lambda),
            f(self.hep),
            self.seed,
            self.mc.iterations,
            f(self.mc.horizon_hours),
            f(self.mc.confidence),
            variance,
            lse,
            fleet,
        )
    }

    /// FNV-1a 64 over the canonical key — the cache hash clients see in
    /// the response's `key` field.
    pub fn canonical_hash(&self) -> u64 {
        fnv1a(self.canonical_key().as_bytes())
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for a cache whose
/// correctness never rests on the hash (lookups compare full keys).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_lse(value: &Json) -> Result<LseSettings, String> {
    let entries = value
        .entries()
        .ok_or_else(|| "`lse` must be an object".to_string())?;
    let mut lse = LseSettings {
        lse_rate: 0.0,
        scrub_interval_hours: 0.0,
    };
    let (mut saw_rate, mut saw_interval) = (false, false);
    for (key, v) in entries {
        match key.as_str() {
            "lse_rate" => {
                lse.lse_rate = need_f64(v, key)?;
                saw_rate = true;
            }
            "scrub_interval_hours" => {
                lse.scrub_interval_hours = need_f64(v, key)?;
                saw_interval = true;
            }
            other => return Err(format!("unknown key `lse.{other}`")),
        }
    }
    if !saw_rate || !saw_interval {
        return Err("`lse` requires `lse_rate` and `scrub_interval_hours`".into());
    }
    Ok(lse)
}

fn parse_fleet(value: &Json) -> Result<FleetSettings, String> {
    let entries = value
        .entries()
        .ok_or_else(|| "`fleet` must be an object".to_string())?;
    let mut fleet = FleetSettings::default();
    for (key, v) in entries {
        match key.as_str() {
            "arrays" => fleet.arrays = need_u64(v, key)?,
            "repairmen" => fleet.repairmen = Some(need_u64(v, key)?),
            "dependence" => {
                let s = need_str(v, key)?;
                fleet.dependence =
                    DependenceLevel::parse(s).ok_or_else(|| format!("unknown dependence `{s}`"))?;
            }
            "domain_arrays" => fleet.domain_arrays = Some(need_u64(v, key)?),
            "domain_rate" => fleet.domain_rate = Some(need_f64(v, key)?),
            "failover_capacity" => {
                fleet.failover_capacity = Some(match v {
                    Json::Str(s) if s == "inf" => None,
                    other => Some(need_u64(other, key)?),
                });
            }
            "failover_policy" => {
                let s = need_str(v, key)?;
                fleet.failover_policy = FailoverPolicy::parse(s)
                    .ok_or_else(|| format!("unknown failover_policy `{s}`"))?;
            }
            "failback_rate" => fleet.failback_rate = Some(need_f64(v, key)?),
            other => return Err(format!("unknown key `fleet.{other}`")),
        }
    }
    if fleet.arrays == 0 {
        return Err("`fleet` requires `arrays` >= 1".into());
    }
    Ok(fleet)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(doc: &str) -> Result<Query, String> {
        Query::from_json(&Json::parse(doc).map_err(|e| e.to_string())?)
    }

    #[test]
    fn parses_a_minimal_exact_query() {
        let q = parse(r#"{"raid": "r5-7", "lambda": 1e-5, "hep": 0.01}"#).unwrap();
        assert!(q.is_exact());
        assert_eq!(q.model, ModelKind::MarkovConventional);
        assert_eq!(q.policy, Policy::Conventional);
        assert_eq!(q.raid.label(), "RAID5(7+1)");
        assert_eq!(q.lambda, 1e-5);
    }

    #[test]
    fn model_defaults_its_policy_but_explicit_wins() {
        let q = parse(r#"{"model": "markov-failover"}"#).unwrap();
        assert_eq!(q.policy, Policy::Failover);
        let q = parse(r#"{"model": "mc", "policy": "failover"}"#).unwrap();
        assert_eq!(q.policy, Policy::Failover);
        assert!(!q.is_exact());
    }

    #[test]
    fn rejects_unknown_and_mistyped_keys() {
        assert!(parse(r#"{"lambda": "fast"}"#)
            .unwrap_err()
            .contains("lambda"));
        assert!(parse(r#"{"lambdaa": 1e-5}"#)
            .unwrap_err()
            .contains("lambdaa"));
        assert!(parse(r#"{"seed": -1}"#).is_err());
        assert!(parse(r#"{"raid": "r9-3"}"#).is_err());
        assert!(parse(r#"{"fleet": {"arrays": 4, "turbo": 1}}"#)
            .unwrap_err()
            .contains("fleet.turbo"));
        assert!(parse(r#"[1, 2]"#).unwrap_err().contains("object"));
    }

    #[test]
    fn variance_tuning_keys_require_their_scheme() {
        let q = parse(r#"{"model": "mc", "variance": "failure-biasing"}"#).unwrap();
        assert_eq!(
            q.mc.variance,
            McVariance::FailureBiasing {
                bias: McVariance::DEFAULT_BIAS
            }
        );
        assert!(parse(r#"{"model": "mc", "bias": 0.5}"#).is_err());
        let q = parse(r#"{"model": "mc", "variance": "splitting", "effort": 7}"#).unwrap();
        assert!(matches!(
            q.mc.variance,
            McVariance::Splitting { effort: 7, .. }
        ));
    }

    #[test]
    fn presentation_fields_do_not_touch_the_key() {
        let base = parse(r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 9}"#).unwrap();
        let dressed = parse(
            r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 9,
                "threads": 8, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(base.canonical_key(), dressed.canonical_key());
        assert_eq!(base.canonical_hash(), dressed.canonical_hash());
    }

    #[test]
    fn estimator_fields_each_move_the_key() {
        let base = parse(r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 9}"#).unwrap();
        for variant in [
            r#"{"model": "mc", "raid": "r5-3", "lambda": 2e-4, "seed": 9}"#,
            r#"{"model": "mc", "raid": "r5-7", "lambda": 1e-4, "seed": 9}"#,
            r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 10}"#,
            r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 9, "variance": "failure-biasing"}"#,
            r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 9, "lse": {"lse_rate": 1e-4, "scrub_interval_hours": 336}}"#,
            r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-4, "seed": 9, "fleet": {"arrays": 4}}"#,
        ] {
            let q = parse(variant).unwrap();
            assert_ne!(base.canonical_key(), q.canonical_key(), "{variant}");
        }
    }

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
