//! A hand-rolled HTTP/1.1 subset: exactly what the service needs.
//!
//! One request per connection (`Connection: close` on every response), a
//! hard cap on header and body bytes, and no chunked encoding — clients
//! send `Content-Length` or nothing. The reader never trusts the peer:
//! oversized heads and bodies fail with a typed error the server maps to
//! `431` / `413`, and a half-open socket runs into the stream's read
//! timeout instead of wedging a worker.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/v1/query`.
    pub target: String,
    /// The body, when a `Content-Length` was sent.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request line or header framing → `400`.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// Body exceeded the server's byte cap → `413`.
    BodyTooLarge,
    /// Socket error or EOF mid-request (no response possible).
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request off the stream.
///
/// # Errors
/// See [`ReadError`]; the caller maps each variant to a status code.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, ReadError> {
    // Read byte-by-byte until the blank line: slow-path simple, and the
    // head cap keeps the worst case tiny. Buffering would over-read into
    // the body.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ReadError::HeadTooLarge);
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-head",
            )));
        }
        head.push(byte[0]);
    }
    let head = String::from_utf8(head)
        .map_err(|_| ReadError::Malformed("request head is not UTF-8".into()))?;

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("malformed header `{line}`")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ReadError::Malformed("bad Content-Length".into()))?;
        }
    }
    if content_length > max_body_bytes {
        return Err(ReadError::BodyTooLarge);
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        target,
        body,
    })
}

/// The reason phrase for each status the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response, written with `Connection: close` and a `Content-Length`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers, e.g. `Retry-After`.
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response (the metrics exposition).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Writes the response; errors are ignored by callers (the peer may
    /// already be gone, which is its problem, not the server's).
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn round_trip(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body);
        client.join().unwrap();
        got
    }

    #[test]
    fn reads_a_post_with_body() {
        let req = round_trip(
            b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/query");
        assert_eq!(req.body, b"{\"\":");
    }

    #[test]
    fn reads_a_bodyless_get() {
        let req = round_trip(b"GET /health HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_and_garbage() {
        assert!(matches!(
            round_trip(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", 10),
            Err(ReadError::BodyTooLarge)
        ));
        assert!(matches!(
            round_trip(b"NOT-HTTP\r\n\r\n", 10),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(b"GET / SMTP/3\r\n\r\n", 10),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_bytes_are_exact() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(503, "{\"error\":\"shed\"}")
                .with_header("Retry-After", "1")
                .write(&mut stream)
                .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut got = String::new();
        stream.read_to_string(&mut got).unwrap();
        server.join().unwrap();
        assert_eq!(
            got,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
             Content-Length: 16\r\nConnection: close\r\nRetry-After: 1\r\n\r\n{\"error\":\"shed\"}"
        );
    }
}
