//! The daemon: accept loop, admission control, worker pool, and drain.
//!
//! # Overload contract
//!
//! Every request gets exactly one of a small set of deterministic
//! outcomes, no matter how hard the service is flooded:
//!
//! * `200` — the estimate, byte-identical for a given canonical key
//!   whether computed or replayed from the cache.
//! * `408` — the request's deadline expired; a fixed body, never a
//!   partial estimate.
//! * `503` + `Retry-After` — shed at admission (queue full) or during
//!   drain. The job never starts, so shedding costs O(1).
//! * `400` / `404` / `405` / `413` / `431` — client errors.
//! * `500` — the engine rejected the model at run time.
//!
//! Exact CTMC queries solve in microseconds and bypass the Monte-Carlo
//! job queue entirely — overload of the expensive path never starves the
//! cheap one.
//!
//! # Drain
//!
//! [`Server::run`] stops admitting when asked to stop (or on SIGTERM via
//! [`crate::signal`]), then drains: in-flight jobs get `drain_ms` to
//! finish; whatever remains is cooperatively cancelled (queued jobs
//! answer `503`, running jobs stop at the next scheduling block and
//! answer `503`), the workers are joined, and the process can exit 0.

use crate::cache::ResultCache;
use crate::exec::{self, ExecError};
use crate::http::{read_request, ReadError, Request, Response};
use crate::json::{escape, Json};
use crate::query::Query;
use availsim_sim::parallel::{resolve_workers, CancelToken};
use availsim_sim::telemetry::{write_counters, Counter, CounterSnapshot, PrometheusWriter};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Service configuration; every knob has a safe default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; `0` picks an ephemeral port.
    pub port: u16,
    /// Monte-Carlo worker threads; `0` means **auto** (the machine's
    /// available parallelism), the same contract as `--threads 0`.
    pub workers: usize,
    /// Bounded job queue: submissions beyond this depth are shed with
    /// `503` + `Retry-After` instead of queuing without limit.
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds for requests that do
    /// not set `deadline_ms`; `0` means no default deadline.
    pub default_deadline_ms: u64,
    /// Drain budget in milliseconds: how long shutdown waits for
    /// in-flight jobs before cancelling them cooperatively.
    pub drain_ms: u64,
    /// Result-cache entries to keep (FIFO eviction); `0` disables.
    pub cache_capacity: usize,
    /// Request body cap; larger bodies answer `413`.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 0,
            queue_capacity: 64,
            default_deadline_ms: 0,
            drain_ms: 2_000,
            cache_capacity: 1_024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// How one admitted job ended.
#[derive(Debug, Clone)]
enum JobOutcome {
    /// The rendered response body (also inserted into the cache).
    Ok(String),
    /// The request deadline expired before the job finished.
    Deadline,
    /// The server drained before the job ran to completion.
    Draining,
    /// The engine failed the model.
    Engine(String),
}

/// The rendezvous between a connection thread and the worker running its
/// job. The queue guarantees every submitted slot is eventually
/// completed (by a worker or by the drain path), so waiting needs no
/// timeout of its own.
#[derive(Debug, Default)]
struct Slot {
    outcome: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl Slot {
    fn complete(&self, outcome: JobOutcome) {
        let mut slot = self.outcome.lock().expect("slot lock");
        *slot = Some(outcome);
        self.cv.notify_all();
    }

    fn wait(&self) -> JobOutcome {
        let mut slot = self.outcome.lock().expect("slot lock");
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.cv.wait(slot).expect("slot lock");
        }
    }
}

/// One admitted Monte-Carlo job.
struct Job {
    query: Query,
    key: String,
    cancel: CancelToken,
    slot: Arc<Slot>,
}

/// Why a submission was rejected at admission.
#[derive(Debug)]
enum SubmitError {
    /// The queue is at capacity.
    Full,
    /// The server is draining.
    Draining,
}

#[derive(Default)]
struct QueueInner {
    jobs: VecDeque<Job>,
    /// Jobs currently executing on workers.
    active: usize,
    /// Tokens of executing jobs, so drain can cancel them. Append-only
    /// while anything is active; cleared whenever the pool goes idle.
    active_tokens: Vec<CancelToken>,
    draining: bool,
    closed: bool,
}

/// The bounded job queue (mutex + condvar; workers block on `pop`).
struct JobQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner::default()),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Admission control: rejects instead of blocking. Returns the queue
    /// depth after the push, for the high-water counter.
    fn submit(&self, job: Job) -> Result<usize, SubmitError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.draining || inner.closed {
            return Err(SubmitError::Draining);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        self.cv.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job; `None` once the queue is closed and empty
    /// (worker shutdown).
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                inner.active += 1;
                inner.active_tokens.push(job.cancel.clone());
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue lock");
        }
    }

    fn job_done(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.active -= 1;
        if inner.active == 0 {
            inner.active_tokens.clear();
        }
        self.cv.notify_all();
    }

    /// Whether nothing is queued or executing.
    fn idle(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock");
        inner.jobs.is_empty() && inner.active == 0
    }

    fn start_draining(&self) {
        self.inner.lock().expect("queue lock").draining = true;
    }

    /// The hard half of drain: every queued job answers `503` without
    /// running, every executing job's token is tripped.
    fn cancel_everything(&self) {
        let (queued, tokens) = {
            let mut inner = self.inner.lock().expect("queue lock");
            let queued: Vec<Job> = inner.jobs.drain(..).collect();
            let tokens = inner.active_tokens.clone();
            (queued, tokens)
        };
        for job in queued {
            job.slot.complete(JobOutcome::Draining);
        }
        for token in tokens {
            token.cancel();
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.cv.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").jobs.len()
    }
}

/// Shared server state.
struct ServerState {
    config: ServeConfig,
    queue: JobQueue,
    cache: ResultCache,
    counters: Mutex<CounterSnapshot>,
    draining: AtomicBool,
}

impl ServerState {
    fn bump(&self, c: Counter) {
        self.counters.lock().expect("counter lock").add(c, 1);
    }

    fn record_max(&self, c: Counter, v: u64) {
        self.counters.lock().expect("counter lock").record_max(c, v);
    }

    fn merge_counters(&self, snap: &CounterSnapshot) {
        self.counters.lock().expect("counter lock").merge(snap);
    }
}

/// The availability service. [`bind`](Server::bind) spawns the worker
/// pool; [`run`](Server::run) blocks on the accept loop until asked to
/// stop, then drains.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds 127.0.0.1 on the configured port and starts the worker pool.
    ///
    /// # Errors
    /// Socket errors (port in use, …).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        // Nonblocking accept lets the loop poll the stop flag; 5 ms of
        // added latency is irrelevant next to a Monte-Carlo run.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            queue: JobQueue::new(config.queue_capacity.max(1)),
            cache: ResultCache::new(config.cache_capacity),
            counters: Mutex::new(CounterSnapshot::default()),
            draining: AtomicBool::new(false),
            config,
        });
        let workers = (0..resolve_workers(config.workers).max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                thread::spawn(move || worker_loop(&state))
            })
            .collect();
        Ok(Server {
            listener,
            addr,
            state,
            workers,
        })
    }

    /// The bound address (query it when `port = 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until `stop` becomes true, then drains and returns whether
    /// every in-flight job finished within the drain budget (cancelled
    /// jobs still answered deterministically either way).
    ///
    /// # Errors
    /// Fatal accept-loop errors only; per-connection errors are handled
    /// on the connection's own thread.
    pub fn run(self, stop: &AtomicBool) -> io::Result<bool> {
        while !stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.shutdown())
    }

    /// Graceful drain: stop admitting, give in-flight jobs the drain
    /// budget, cancel stragglers, join the workers. Returns whether the
    /// budget sufficed without cancellation.
    pub fn shutdown(self) -> bool {
        self.state.draining.store(true, Ordering::Relaxed);
        self.state.queue.start_draining();
        let budget = Duration::from_millis(self.state.config.drain_ms);
        let deadline = Instant::now() + budget;
        let mut drained = true;
        while !self.state.queue.idle() {
            if Instant::now() >= deadline {
                drained = false;
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        if !drained {
            self.state.queue.cancel_everything();
            // Cancellation is cooperative at block granularity, so give
            // the workers the same budget again to observe it; a second
            // overrun means a wedged engine, which joining would turn
            // into a hang — proceed to close regardless.
            let hard = Instant::now() + budget;
            while !self.state.queue.idle() && Instant::now() < hard {
                thread::sleep(Duration::from_millis(2));
            }
        }
        self.state.queue.close();
        for handle in self.workers {
            let _ = handle.join();
        }
        drained
    }
}

fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        let outcome = if job.cancel.is_cancelled() {
            // Expired (or drain-cancelled) while still queued: answer
            // without burning any engine time.
            cancelled_outcome(&job.cancel)
        } else {
            match exec::execute(&job.query, Some(&job.cancel)) {
                Ok((body, counters)) => {
                    state.cache.insert(&job.key, &body);
                    state.merge_counters(&counters);
                    JobOutcome::Ok(body)
                }
                Err(ExecError::Deadline) => cancelled_outcome(&job.cancel),
                Err(ExecError::Engine(msg)) => JobOutcome::Engine(msg),
            }
        };
        if matches!(outcome, JobOutcome::Deadline) {
            state.bump(Counter::ServeDeadlineExpiries);
        }
        job.slot.complete(outcome);
        state.queue.job_done();
    }
}

/// Distinguishes the two ways a token trips: a passed deadline is the
/// request's own timeout (`408`); a bare cancel is the server draining
/// (`503`).
fn cancelled_outcome(cancel: &CancelToken) -> JobOutcome {
    if cancel.deadline().is_some_and(|d| Instant::now() >= d) {
        JobOutcome::Deadline
    } else {
        JobOutcome::Draining
    }
}

/// The fixed `408` body: deterministic bytes, never a partial estimate.
const DEADLINE_BODY: &str = "{\"error\":\"deadline expired\"}";

fn shed_response(reason: &str) -> Response {
    Response::json(503, format!("{{\"error\":\"{reason}\"}}")).with_header("Retry-After", "1")
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":\"{}\"}}", escape(message)))
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    use std::io::Read as _;
    // A stalled peer must not wedge the thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (response, fully_read) = match read_request(&mut stream, state.config.max_body_bytes) {
        Ok(request) => {
            state.bump(Counter::ServeRequests);
            (route(state, &request), true)
        }
        Err(ReadError::Malformed(msg)) => (error_response(400, &msg), false),
        Err(ReadError::HeadTooLarge) => (error_response(431, "request head too large"), false),
        Err(ReadError::BodyTooLarge) => (error_response(413, "request body too large"), false),
        // No parseable request to answer; the socket is gone or garbage.
        Err(ReadError::Io(_)) => return,
    };
    let _ = response.write(&mut stream);
    if !fully_read {
        // Unread request bytes would turn our close into a TCP RST and
        // junk the response before the client reads it; drain briefly.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

fn route(state: &ServerState, request: &Request) -> Response {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/health") => {
            if state.draining.load(Ordering::Relaxed) {
                Response::json(503, "{\"status\":\"draining\"}").with_header("Retry-After", "1")
            } else {
                Response::json(200, "{\"status\":\"ok\"}")
            }
        }
        ("GET", "/metrics") => metrics_response(state),
        ("POST", "/v1/query") => handle_query(state, &request.body),
        (_, "/health" | "/metrics" | "/v1/query") => error_response(405, "method not allowed"),
        _ => error_response(404, "not found"),
    }
}

fn metrics_response(state: &ServerState) -> Response {
    let snap = *state.counters.lock().expect("counter lock");
    let mut w = PrometheusWriter::new();
    w.comment("availsim serve");
    w.metric_u64(
        "availsim_serve_queue_depth",
        "Monte-Carlo jobs currently queued",
        "gauge",
        state.queue.depth() as u64,
    );
    w.metric_u64(
        "availsim_serve_cache_entries",
        "Entries live in the result cache",
        "gauge",
        state.cache.len() as u64,
    );
    write_counters(&mut w, &snap);
    Response::text(200, w.finish())
}

fn handle_query(state: &ServerState, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(msg) => return error_response(400, &format!("bad JSON: {msg}")),
    };
    let query = match Query::from_json(&doc) {
        Ok(query) => query,
        Err(msg) => return error_response(400, &msg),
    };
    if let Err(msg) = exec::validate(&query) {
        return error_response(400, &msg);
    }

    let key = query.canonical_key();
    if let Some(body) = state.cache.get(&key) {
        state.bump(Counter::ServeCacheHits);
        return Response::json(200, body).with_header("X-Availsim-Cache", "hit");
    }

    // Exact CTMC queries solve in microseconds: answer inline, never
    // competing with Monte-Carlo jobs for queue slots or workers.
    if query.is_exact() {
        return match exec::execute(&query, None) {
            Ok((body, counters)) => {
                state.cache.insert(&key, &body);
                state.merge_counters(&counters);
                Response::json(200, body).with_header("X-Availsim-Cache", "miss")
            }
            Err(ExecError::Engine(msg)) => error_response(500, &msg),
            Err(ExecError::Deadline) => unreachable!("exact queries run uncancelled"),
        };
    }

    let deadline_ms = query
        .deadline_ms
        .or((state.config.default_deadline_ms > 0).then_some(state.config.default_deadline_ms));
    let cancel = match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    let slot = Arc::new(Slot::default());
    let job = Job {
        query,
        key,
        cancel,
        slot: Arc::clone(&slot),
    };
    match state.queue.submit(job) {
        Ok(depth) => {
            state.record_max(Counter::ServeQueueDepthHighWater, depth as u64);
        }
        Err(SubmitError::Full) => {
            state.bump(Counter::ServeSheds);
            return shed_response("queue full");
        }
        Err(SubmitError::Draining) => {
            state.bump(Counter::ServeSheds);
            return shed_response("draining");
        }
    }
    match slot.wait() {
        JobOutcome::Ok(body) => Response::json(200, body).with_header("X-Availsim-Cache", "miss"),
        JobOutcome::Deadline => Response::json(408, DEADLINE_BODY),
        JobOutcome::Draining => shed_response("draining"),
        JobOutcome::Engine(msg) => error_response(500, &msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn mc_job(seed: u64, iterations: u64, cancel: CancelToken) -> (Job, Arc<Slot>) {
        let doc = format!(
            "{{\"model\": \"mc\", \"raid\": \"r5-3\", \"lambda\": 1e-3, \"hep\": 0.01, \
             \"iterations\": {iterations}, \"horizon_hours\": 10000, \"seed\": {seed}}}"
        );
        let query = Query::from_json(&Json::parse(&doc).unwrap()).unwrap();
        let key = query.canonical_key();
        let slot = Arc::new(Slot::default());
        (
            Job {
                query,
                key,
                cancel,
                slot: Arc::clone(&slot),
            },
            slot,
        )
    }

    #[test]
    fn queue_sheds_at_capacity_and_drain_answers_queued_jobs() {
        let queue = JobQueue::new(2);
        let (a, _sa) = mc_job(1, 100, CancelToken::new());
        let (b, sb) = mc_job(2, 100, CancelToken::new());
        let (c, _sc) = mc_job(3, 100, CancelToken::new());
        assert!(queue.submit(a).is_ok());
        assert!(queue.submit(b).is_ok());
        assert!(matches!(queue.submit(c), Err(SubmitError::Full)));

        queue.start_draining();
        let (d, _sd) = mc_job(4, 100, CancelToken::new());
        assert!(matches!(queue.submit(d), Err(SubmitError::Draining)));

        // No worker ever ran: the drain path must still complete every
        // queued slot so no client hangs.
        queue.cancel_everything();
        assert!(matches!(sb.wait(), JobOutcome::Draining));
        assert!(queue.depth() == 0);
    }

    #[test]
    fn pop_returns_none_only_after_close() {
        let queue = JobQueue::new(4);
        let (a, sa) = mc_job(1, 50, CancelToken::new());
        queue.submit(a).unwrap();
        let job = queue.pop().unwrap();
        job.slot.complete(JobOutcome::Ok("x".into()));
        queue.job_done();
        assert!(matches!(sa.wait(), JobOutcome::Ok(_)));
        assert!(queue.idle());
        queue.close();
        assert!(queue.pop().is_none());
    }

    #[test]
    fn cancelled_outcome_separates_deadline_from_drain() {
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(cancelled_outcome(&expired), JobOutcome::Deadline));
        let drained = CancelToken::new();
        drained.cancel();
        assert!(matches!(cancelled_outcome(&drained), JobOutcome::Draining));
    }
}
