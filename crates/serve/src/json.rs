//! A minimal, std-only JSON value type: parser and string escaping.
//!
//! The build environment is offline, so the service hand-rolls the same
//! subset of JSON the spec parser hand-rolls its line format: objects,
//! arrays, strings (with the standard escapes incl. `\uXXXX`), numbers,
//! booleans, and `null`. Parsing fails loudly with a byte offset —
//! malformed input is a client error the server must name, never a panic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

/// Nesting depth cap: deep recursion is an attack surface, not a use case.
const MAX_DEPTH: usize = 32;

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's key/value pairs, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    let v: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Json::Num(v))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are rejected rather than decoded:
                        // the service's own vocabulary is pure ASCII.
                        let c = char::from_u32(code)
                            .ok_or_else(|| "surrogate \\u escape unsupported".to_string())?;
                        out.push(c);
                    }
                    other => return Err(format!("invalid escape \\{}", *other as char)),
                }
            }
            Some(&b) if b < 0x20 => return Err("unescaped control character".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing on
                // char boundaries is safe via the str view).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_vocabulary() {
        let doc = r#"{"a": 1.5, "b": [true, false, null], "c": "x\n\"y\"", "d": {"e": -2e-3}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            v.get("b").unwrap(),
            &Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null])
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_f64(), Some(-2e-3));
    }

    #[test]
    fn integers_round_trip_exactly() {
        let v = Json::parse("{\"n\": 18446744073709551615}").unwrap();
        // 2^64-1 is not exactly representable; the exact-integer accessor
        // must not silently round.
        assert!(v.get("n").unwrap().as_u64().is_none() || u64::MAX as f64 == 1.8446744073709552e19);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"x",
            "{\"a\":1}extra",
            "{\"a\":1,\"a\":2}",
            "[\u{0007}]",
            "NaN",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn escape_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{0001}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
