//! SIGTERM / SIGINT → a stop flag the accept loop polls.
//!
//! The crate forbids unsafe code except in this one tiny, auditable
//! module: installing a signal handler needs the libc `signal` symbol
//! (which std already links), and the handler body does the only thing
//! that is async-signal-safe — a relaxed atomic store. The server's
//! accept loop polls the flag and turns it into a graceful drain.

use std::sync::atomic::AtomicBool;

/// Set once a termination signal arrives.
static STOP: AtomicBool = AtomicBool::new(false);

/// The process-wide stop flag; hand it to [`crate::server::Server::run`].
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

#[cfg(unix)]
mod imp {
    use super::STOP;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            pub fn signal(signum: i32, handler: usize) -> usize;
        }
    }

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        STOP.store(true, Ordering::Relaxed);
    }

    /// Installs the SIGTERM/SIGINT handlers.
    #[allow(unsafe_code)]
    pub fn install() {
        // SAFETY: `signal` is the C standard library's handler
        // registration; the handler is an `extern "C" fn(i32)` that only
        // performs an atomic store, which is async-signal-safe.
        let handler = on_signal as *const () as usize;
        unsafe {
            ffi::signal(SIGTERM, handler);
            ffi::signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-unix targets: the stop flag can still be set
    /// programmatically.
    pub fn install() {}
}

/// Installs termination handlers (SIGTERM and SIGINT on unix; a no-op
/// elsewhere). Idempotent.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn flag_starts_clear_and_handlers_install() {
        install_handlers();
        // The flag may have been set by a test harness signal; all we can
        // assert portably is that installation does not set it by itself
        // and the flag is reachable.
        let _ = stop_flag().load(Ordering::Relaxed);
    }
}
