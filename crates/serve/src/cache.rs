//! The canonical-hash result cache.
//!
//! The determinism contracts make MC estimates a pure function of
//! `(model, McConfig, seed)` — so the cache needs no TTL and no
//! invalidation: an entry can never go stale, only cold. Capacity is
//! bounded with FIFO (insertion-order) eviction; correctness never rests
//! on what gets evicted, only repeat-query latency does. Lookups compare
//! full canonical keys, so hash collisions cannot cross-contaminate.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// A bounded map from canonical query key to the exact response body
/// served for it.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// The cached body for `key`, byte-identical to the first answer.
    pub fn get(&self, key: &str) -> Option<String> {
        self.inner.lock().expect("cache lock").map.get(key).cloned()
    }

    /// Inserts an answer, evicting the oldest entry at capacity. Losing
    /// a race to another worker is fine: determinism guarantees both
    /// wrote the same bytes.
    pub fn insert(&self, key: &str, body: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner.map.contains_key(key) {
            return;
        }
        if inner.order.len() >= self.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key.to_string(), body.to_string());
        inner.order.push_back(key.to_string());
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_exact_bytes() {
        let cache = ResultCache::new(4);
        assert!(cache.get("k").is_none());
        cache.insert("k", "{\"u\":1e-5}");
        assert_eq!(cache.get("k").as_deref(), Some("{\"u\":1e-5}"));
    }

    #[test]
    fn eviction_is_fifo_and_capacity_bounded() {
        let cache = ResultCache::new(2);
        cache.insert("a", "1");
        cache.insert("b", "2");
        cache.insert("c", "3");
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert_eq!(cache.get("b").as_deref(), Some("2"));
        assert_eq!(cache.get("c").as_deref(), Some("3"));
    }

    #[test]
    fn duplicate_insert_keeps_the_first_answer_and_order() {
        let cache = ResultCache::new(2);
        cache.insert("a", "first");
        cache.insert("a", "second");
        assert_eq!(cache.get("a").as_deref(), Some("first"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ResultCache::new(0);
        cache.insert("a", "1");
        assert!(cache.is_empty());
    }
}
