//! Query execution: one query in, one deterministic JSON body out.
//!
//! The executor reuses the campaign runner's single-cell path
//! ([`availsim_exp::run::run_cell_cancellable`]) so serve answers are
//! bit-identical to what a spec-file campaign would report for the same
//! cell — one estimator, two front doors. A tripped cancel token (request
//! deadline or server drain) surfaces as [`ExecError::Deadline`]; the
//! partial work was already discarded below, so a timed-out query has
//! exactly one observable outcome regardless of how far it got.

use crate::query::Query;
use availsim_core::CoreError;
use availsim_exp::plan::Cell;
use availsim_exp::run::run_cell_cancellable;
use availsim_exp::ExpError;
use availsim_sim::parallel::CancelToken;
use availsim_sim::telemetry::CounterSnapshot;
use std::fmt::Write as _;

/// Why a query failed to produce an estimate.
#[derive(Debug)]
pub enum ExecError {
    /// The cooperative deadline tripped mid-run → `408`.
    Deadline,
    /// The engine rejected or failed the model → `500`.
    Engine(String),
}

/// Validates the query against the campaign layer's invariants (fleet
/// requires the MC backend, live LSE rates need MC or the generic chain,
/// variance parameters must be in range, …).
///
/// # Errors
/// The campaign layer's message, for a `400` response.
pub fn validate(query: &Query) -> Result<(), String> {
    query.to_scenario().validate().map_err(|e| e.to_string())
}

/// Runs the query to completion (or its deadline) and renders the
/// response body. The body is a pure function of the canonical key —
/// the cache stores it verbatim.
///
/// # Errors
/// See [`ExecError`].
pub fn execute(
    query: &Query,
    cancel: Option<&CancelToken>,
) -> Result<(String, CounterSnapshot), ExecError> {
    let scenario = query.to_scenario();
    let cell = Cell {
        index: 0,
        seed: query.seed,
        raid: query.raid,
        policy: query.policy,
        lambda: query.lambda,
        hep: query.hep,
    };
    let result = run_cell_cancellable(&scenario, &cell, cancel).map_err(|e| match e {
        ExpError::Cancelled => ExecError::Deadline,
        ExpError::Model {
            source: CoreError::DeadlineExpired { .. },
            ..
        } => ExecError::Deadline,
        other => ExecError::Engine(other.to_string()),
    })?;

    // Field order is fixed and floats round-trip via `{:?}`, so the body
    // is byte-stable: same canonical key, same bytes, forever.
    let mut body = String::with_capacity(256);
    let _ = write!(
        body,
        "{{\"key\":\"{:016x}\",\"unavailability\":{:?},\"nines\":{:?},\"downtime_min_per_year\":{:?}",
        query.canonical_hash(),
        result.unavailability,
        result.nines,
        result.downtime_min_per_year,
    );
    if let Some(v) = result.mttdl_hours {
        let _ = write!(body, ",\"mttdl_hours\":{v:?}");
    }
    if let Some(v) = result.ci_half_width {
        let _ = write!(body, ",\"ci_half_width\":{v:?}");
    }
    if let Some(v) = result.credited_unavailability {
        let _ = write!(body, ",\"credited_unavailability\":{v:?}");
    }
    if let Some(v) = result.p_data_loss {
        let _ = write!(body, ",\"p_data_loss\":{v:?}");
    }
    if let Some(v) = result.nomdl_per_tb {
        let _ = write!(body, ",\"nomdl_per_tb\":{v:?}");
    }
    body.push('}');
    Ok((body, result.counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::time::{Duration, Instant};

    fn query(doc: &str) -> Query {
        Query::from_json(&Json::parse(doc).unwrap()).unwrap()
    }

    #[test]
    fn exact_query_executes_and_renders_markov_fields() {
        let q = query(r#"{"raid": "r5-3", "lambda": 1e-5, "hep": 0.01}"#);
        validate(&q).unwrap();
        let (body, counters) = execute(&q, None).unwrap();
        assert!(body.starts_with("{\"key\":\""), "{body}");
        assert!(body.contains("\"unavailability\":"), "{body}");
        assert!(body.contains("\"mttdl_hours\":"), "{body}");
        assert!(!body.contains("ci_half_width"), "exact has no CI: {body}");
        let parsed = Json::parse(&body).unwrap();
        let u = parsed.get("unavailability").unwrap().as_f64().unwrap();
        assert!(u > 0.0 && u < 1.0);
        assert!(counters.is_empty(), "markov cells report no counters");
    }

    #[test]
    fn mc_query_is_bit_reproducible_and_thread_invariant() {
        let base = r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                       "iterations": 300, "horizon_hours": 10000, "seed": 42}"#;
        let threaded = r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                           "iterations": 300, "horizon_hours": 10000, "seed": 42,
                           "threads": 4}"#;
        let (a, ca) = execute(&query(base), None).unwrap();
        let (b, _) = execute(&query(base), None).unwrap();
        let (c, _) = execute(&query(threaded), None).unwrap();
        assert_eq!(a, b, "same query, same bytes");
        assert_eq!(a, c, "threads are presentation-only");
        assert!(a.contains("\"ci_half_width\":"), "{a}");
        assert!(!ca.is_empty(), "mc answers carry engine counters");
    }

    #[test]
    fn expired_deadline_is_a_deadline_error_not_an_estimate() {
        let q = query(
            r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                "iterations": 200000, "horizon_hours": 10000}"#,
        );
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        match execute(&q, Some(&token)) {
            Err(ExecError::Deadline) => {}
            other => panic!("expected deadline, got {other:?}"),
        }
    }

    #[test]
    fn invalid_combinations_fail_validation_with_a_message() {
        // A fleet section demands the MC backend.
        let q = query(r#"{"fleet": {"arrays": 4}, "raid": "r5-3"}"#);
        let msg = validate(&q).unwrap_err();
        assert!(!msg.is_empty());
    }
}
