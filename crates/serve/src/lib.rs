//! `availsim serve`: an overload-safe availability query service.
//!
//! A std-only HTTP/1.1 JSON daemon over the repository's estimators,
//! built for the one property a service layer can ruin: **determinism
//! under load**. The determinism contracts below make every answer a
//! pure function of its canonical query key, and the service is designed
//! so that no amount of concurrency, overload, or shutdown timing can
//! observe anything else:
//!
//! * **Result cache** ([`cache`]) — `hash(model + McConfig + seed) →
//!   estimate` is exact, not heuristic, because the engines are
//!   bit-reproducible. Repeat queries are O(1) and byte-identical to the
//!   first computation.
//! * **Admission control** ([`server`]) — a bounded job queue with a
//!   worker pool. A full queue sheds with `503` + `Retry-After` before
//!   any work starts; cheap exact-CTMC queries bypass the queue.
//! * **Deadlines** ([`exec`]) — per-request deadlines ride a cooperative
//!   [`CancelToken`](availsim_sim::parallel::CancelToken) into the
//!   Monte-Carlo block scheduler; an expired job answers a fixed `408`
//!   body, never a timing-dependent partial estimate.
//! * **Graceful drain** ([`server::Server::shutdown`], [`signal`]) —
//!   SIGTERM stops admission, in-flight jobs get the drain budget, the
//!   rest are cancelled deterministically, and the process exits 0.
//! * **Observability** — `/health` and `/metrics` (Prometheus text) off
//!   the shared telemetry registry's `serve` counter group.
//!
//! # Endpoints
//!
//! | Endpoint | Method | Answer |
//! |---|---|---|
//! | `/v1/query` | POST | the estimate for one JSON query |
//! | `/health` | GET | `200 ok`, or `503` while draining |
//! | `/metrics` | GET | Prometheus exposition of all counters |

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod exec;
pub mod http;
pub mod json;
pub mod query;
pub mod server;
pub mod signal;

pub use query::Query;
pub use server::{ServeConfig, Server};
