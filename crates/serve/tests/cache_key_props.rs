//! Property tests for cache-key canonicalization: the key must quotient
//! the query space exactly by the determinism contract. Presentation-only
//! fields (threads, deadline) never move the key; every estimator-relevant
//! field — rates, seed, variance mode, scrubbing, fleet coupling — does.

use availsim_core::mc::McVariance;
use availsim_exp::spec::{parse_geometry_label, FleetSettings, LseSettings, ModelKind};
use availsim_serve::Query;
use proptest::prelude::*;

fn arb_query() -> impl Strategy<Value = Query> {
    let lambda = prop_oneof![Just(1e-5), Just(2e-5), Just(1e-4), Just(1e-3)];
    let hep = prop_oneof![Just(0.0), Just(0.01), Just(0.1)];
    let raid = prop_oneof![Just("r1"), Just("r5-3"), Just("r5-7"), Just("r6-4")];
    let variance = prop_oneof![
        Just(McVariance::Naive),
        Just(McVariance::FailureBiasing { bias: 0.5 }),
        Just(McVariance::Splitting {
            levels: 2,
            effort: 64
        }),
    ];
    let lse = prop_oneof![
        Just(None),
        Just(Some(LseSettings {
            lse_rate: 1e-4,
            scrub_interval_hours: 336.0
        })),
    ];
    let fleet_arrays = prop_oneof![Just(0u64), Just(2), Just(8)];
    (
        (lambda, hep, raid, any::<u64>()),
        (variance, lse, fleet_arrays),
    )
        .prop_map(
            |((lambda, hep, raid, seed), (variance, lse, fleet_arrays))| {
                let mut q = Query {
                    model: ModelKind::Mc,
                    lambda,
                    hep,
                    seed,
                    raid: parse_geometry_label(raid).unwrap(),
                    lse,
                    ..Query::default()
                };
                q.mc.variance = variance;
                if fleet_arrays > 0 {
                    q.fleet = Some(FleetSettings {
                        arrays: fleet_arrays,
                        ..FleetSettings::default()
                    });
                }
                q
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Thread count and deadline are pure presentation: any values hash
    /// to the same key as none at all.
    #[test]
    fn presentation_fields_never_move_the_key(
        q in arb_query(),
        threads in 0usize..16,
        deadline in prop_oneof![Just(None), Just(Some(1u64)), Just(Some(60_000u64))],
    ) {
        let mut dressed = q.clone();
        dressed.mc.threads = threads;
        dressed.deadline_ms = deadline;
        prop_assert_eq!(q.canonical_key(), dressed.canonical_key());
        prop_assert_eq!(q.canonical_hash(), dressed.canonical_hash());
    }

    /// Every estimator-relevant field moves the key when it changes.
    #[test]
    fn estimator_fields_each_move_the_key(q in arb_query()) {
        let base = q.canonical_key();

        let mut rate = q.clone();
        rate.lambda *= 1.5;
        prop_assert_ne!(&base, &rate.canonical_key());

        let mut hep = q.clone();
        hep.hep += 0.003;
        prop_assert_ne!(&base, &hep.canonical_key());

        let mut seed = q.clone();
        seed.seed = seed.seed.wrapping_add(1);
        prop_assert_ne!(&base, &seed.canonical_key());

        let mut iters = q.clone();
        iters.mc.iterations += 1;
        prop_assert_ne!(&base, &iters.canonical_key());

        let mut variance = q.clone();
        variance.mc.variance = match q.mc.variance {
            McVariance::Naive => McVariance::FailureBiasing { bias: 0.5 },
            _ => McVariance::Naive,
        };
        prop_assert_ne!(&base, &variance.canonical_key());

        let mut scrub = q.clone();
        scrub.lse = Some(match q.lse {
            None => LseSettings { lse_rate: 1e-4, scrub_interval_hours: 336.0 },
            Some(l) => LseSettings { lse_rate: l.lse_rate * 2.0, ..l },
        });
        prop_assert_ne!(&base, &scrub.canonical_key());

        let mut fleet = q.clone();
        fleet.fleet = Some(match q.fleet {
            None => FleetSettings { arrays: 4, ..FleetSettings::default() },
            Some(f) => FleetSettings { arrays: f.arrays + 1, ..f },
        });
        prop_assert_ne!(&base, &fleet.canonical_key());
    }

    /// The key is a pure function: recomputing it never yields new bytes,
    /// and the hash is a pure function of the key.
    #[test]
    fn key_and_hash_are_stable(q in arb_query()) {
        prop_assert_eq!(q.canonical_key(), q.clone().canonical_key());
        prop_assert_eq!(
            q.canonical_hash(),
            availsim_serve::query::fnv1a(q.canonical_key().as_bytes())
        );
    }
}
