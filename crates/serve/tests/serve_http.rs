//! End-to-end tests of `availsim serve` over real sockets: raw
//! `TcpStream` clients against an ephemeral-port server, covering the
//! whole overload contract — concurrency, cache-hit byte-identity,
//! admission-control shedding, deadline expiry, and graceful drain.

use availsim_serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Starts a server; returns its address, the stop flag, and the join
/// handle (which yields whether drain finished within budget).
fn start(config: ServeConfig) -> (SocketAddr, Arc<AtomicBool>, thread::JoinHandle<bool>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = thread::spawn(move || server.run(&flag).expect("accept loop"));
    (addr, stop, handle)
}

/// A parsed response: status, headers (lowercased names), body.
struct Reply {
    status: u16,
    headers: HashMap<String, String>,
    body: String,
}

/// One raw HTTP/1.1 exchange.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: availsim\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response framing");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn query(addr: SocketAddr, body: &str) -> Reply {
    request(addr, "POST", "/v1/query", body)
}

/// Stops the server and joins the accept loop.
fn stop_and_join(stop: &AtomicBool, handle: thread::JoinHandle<bool>) -> bool {
    stop.store(true, Ordering::Relaxed);
    handle.join().expect("server thread")
}

#[test]
fn health_metrics_and_routing() {
    let (addr, stop, handle) = start(ServeConfig::default());

    let health = request(addr, "GET", "/health", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    let metrics = request(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("availsim_serve_requests_total"));
    assert!(metrics.body.contains("availsim_serve_queue_depth"));
    assert!(metrics
        .body
        .contains("# TYPE availsim_serve_sheds_total counter"));

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "POST", "/health", "").status, 405);
    assert_eq!(request(addr, "GET", "/v1/query", "").status, 405);

    stop_and_join(&stop, handle);
}

#[test]
fn exact_queries_answer_inline_with_every_error_mapped() {
    let (addr, stop, handle) = start(ServeConfig {
        max_body_bytes: 512,
        ..ServeConfig::default()
    });

    // A good exact query.
    let ok = query(addr, r#"{"raid": "r5-7", "lambda": 1e-5, "hep": 0.01}"#);
    assert_eq!(ok.status, 200);
    assert!(ok.body.contains("\"unavailability\":"), "{}", ok.body);
    assert!(ok.body.contains("\"mttdl_hours\":"), "{}", ok.body);
    assert_eq!(ok.headers.get("x-availsim-cache").unwrap(), "miss");

    // 400: malformed JSON, unknown keys, bad model combinations.
    assert_eq!(query(addr, "{not json").status, 400);
    let unknown = query(addr, r#"{"lambdaa": 1e-5}"#);
    assert_eq!(unknown.status, 400);
    assert!(unknown.body.contains("lambdaa"), "{}", unknown.body);
    assert_eq!(
        query(addr, r#"{"fleet": {"arrays": 4}, "raid": "r5-3"}"#).status,
        400,
        "fleet without model=mc is a spec error"
    );

    // 413: body over the configured cap.
    let huge = format!("{{\"raid\": \"r5-3\", \"hep\": 0.0{}}}", " ".repeat(600));
    assert_eq!(query(addr, &huge).status, 413);

    // 500: the model rejects the combination at run time (the Fig. 3
    // chain requires single-fault tolerance).
    let engine = query(addr, r#"{"model": "markov-failover", "raid": "r6-4"}"#);
    assert_eq!(engine.status, 500);
    assert!(engine.body.contains("error"), "{}", engine.body);

    stop_and_join(&stop, handle);
}

#[test]
fn cache_replay_is_byte_identical_and_thread_invariant() {
    let (addr, stop, handle) = start(ServeConfig::default());
    let mc = r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                 "iterations": 300, "horizon_hours": 10000, "seed": 42}"#;

    let first = query(addr, mc);
    assert_eq!(first.status, 200);
    assert_eq!(first.headers.get("x-availsim-cache").unwrap(), "miss");
    assert!(first.body.contains("\"ci_half_width\":"), "{}", first.body);

    let second = query(addr, mc);
    assert_eq!(second.status, 200);
    assert_eq!(second.headers.get("x-availsim-cache").unwrap(), "hit");
    assert_eq!(first.body, second.body, "replay must be byte-identical");

    // Presentation-only fields (threads, deadline) hit the same cache
    // line: the determinism contract makes them invisible to the key.
    let dressed = r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                      "iterations": 300, "horizon_hours": 10000, "seed": 42,
                      "threads": 4, "deadline_ms": 60000}"#;
    let third = query(addr, dressed);
    assert_eq!(third.headers.get("x-availsim-cache").unwrap(), "hit");
    assert_eq!(first.body, third.body);

    // A different seed is a different key.
    let other = r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                    "iterations": 300, "horizon_hours": 10000, "seed": 43}"#;
    let fourth = query(addr, other);
    assert_eq!(fourth.headers.get("x-availsim-cache").unwrap(), "miss");
    assert_ne!(first.body, fourth.body);

    // The registry saw exactly one cache hit per replay.
    let metrics = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.body.contains("availsim_serve_cache_hits_total 2"),
        "{}",
        metrics.body
    );

    stop_and_join(&stop, handle);
}

#[test]
fn expired_deadlines_answer_a_fixed_408_body() {
    let (addr, stop, handle) = start(ServeConfig::default());
    // Far more iterations than 1 ms allows; the cooperative token trips
    // inside the block scheduler and the partial work is discarded.
    let slow = r#"{"model": "mc", "raid": "r5-3", "lambda": 1e-3, "hep": 0.01,
                   "iterations": 50000000, "horizon_hours": 100000, "seed": 7,
                   "deadline_ms": 1}"#;
    let a = query(addr, slow);
    let b = query(addr, slow);
    assert_eq!(a.status, 408);
    assert_eq!(a.body, "{\"error\":\"deadline expired\"}");
    assert_eq!(b.status, 408);
    assert_eq!(a.body, b.body, "timeouts are deterministic bytes");

    // Timeouts are never cached: nothing to replay.
    let metrics = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.body.contains("availsim_serve_cache_hits_total 0"),
        "{}",
        metrics.body
    );
    assert!(
        !metrics
            .body
            .contains("availsim_serve_deadline_expiries_total 0"),
        "expiries must be counted: {}",
        metrics.body
    );

    stop_and_join(&stop, handle);
}

#[test]
fn synthetic_flood_sheds_deterministically_and_never_hangs() {
    // One worker and a two-slot queue: of n >> q simultaneous MC
    // queries, at most a few are admitted; the rest must shed with
    // 503 + Retry-After. Every client gets exactly one terminal answer.
    let (addr, stop, handle) = start(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    });

    let n = 16;
    let barrier = Arc::new(Barrier::new(n));
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let body = format!(
                    "{{\"model\": \"mc\", \"raid\": \"r5-3\", \"lambda\": 1e-3, \
                     \"hep\": 0.01, \"iterations\": 4000, \"horizon_hours\": 10000, \
                     \"seed\": {i}, \"deadline_ms\": 30000}}"
                );
                barrier.wait();
                query(addr, &body)
            })
        })
        .collect();

    let replies: Vec<Reply> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let mut sheds = 0;
    for reply in &replies {
        assert!(
            matches!(reply.status, 200 | 408 | 503),
            "unexpected status {} ({})",
            reply.status,
            reply.body
        );
        if reply.status == 503 {
            sheds += 1;
            assert_eq!(
                reply.headers.get("retry-after").map(String::as_str),
                Some("1"),
                "every shed names a retry hint"
            );
        }
    }
    assert!(sheds >= 1, "a 2-slot queue must shed under 16-way flood");
    assert!(
        replies.iter().any(|r| r.status == 200),
        "admitted jobs complete"
    );

    let metrics = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.body.contains("availsim_serve_sheds_total"),
        "{}",
        metrics.body
    );

    stop_and_join(&stop, handle);
}

#[test]
fn drain_mid_flood_answers_every_client_within_budget() {
    let (addr, stop, handle) = start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        drain_ms: 300,
        ..ServeConfig::default()
    });

    // Slow jobs, no deadlines: only the drain can end them early.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            thread::spawn(move || {
                let body = format!(
                    "{{\"model\": \"mc\", \"raid\": \"r5-3\", \"lambda\": 1e-3, \
                     \"hep\": 0.01, \"iterations\": 50000000, \
                     \"horizon_hours\": 100000, \"seed\": {i}}}"
                );
                query(addr, &body)
            })
        })
        .collect();

    // Let the flood land, then pull the plug.
    thread::sleep(Duration::from_millis(100));
    let begun = Instant::now();
    stop.store(true, Ordering::Relaxed);
    let drained_clean = handle.join().expect("server thread");
    // In-flight 50M-iteration jobs cannot finish in 300 ms, so the drain
    // must have escalated to cooperative cancellation — and still
    // returned promptly (budget + cancellation window + slack).
    assert!(!drained_clean, "jobs this slow cannot drain cleanly");
    assert!(
        begun.elapsed() < Duration::from_secs(30),
        "drain must be bounded, took {:?}",
        begun.elapsed()
    );

    // Every client still got exactly one deterministic answer: 200 if it
    // finished, 503 if the drain cancelled or rejected it.
    for client in clients {
        let reply = client.join().unwrap();
        assert!(
            matches!(reply.status, 200 | 503),
            "unexpected status {} ({})",
            reply.status,
            reply.body
        );
        if reply.status == 503 {
            assert!(reply.headers.contains_key("retry-after"));
        }
    }
}
