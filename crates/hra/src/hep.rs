//! Human Error Probability (hep) — the central HRA quantity.
//!
//! Per the paper (Section II-A): "hep … is simply defined by the fraction of
//! error cases observed, over the opportunities for human errors", with
//! typical values between 0.001 and 0.1, narrowing to 0.001–0.01 in
//! enterprise and safety-critical settings.

use crate::error::{HraError, Result};
use std::fmt;

/// A validated human-error probability in `[0, 1]`.
///
/// `hep = 0` is allowed: it encodes the *traditional* availability model that
/// ignores human error, which the paper uses as its baseline.
///
/// # Examples
///
/// ```
/// use availsim_hra::Hep;
///
/// # fn main() -> Result<(), availsim_hra::HraError> {
/// let hep = Hep::new(0.001)?;
/// assert!(hep.is_within_enterprise_band());
/// assert_eq!(hep.complement(), 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Hep(f64);

impl Hep {
    /// The hep = 0 baseline (no human error considered).
    pub const ZERO: Hep = Hep(0.0);

    /// Creates a validated hep.
    ///
    /// # Errors
    /// Returns [`HraError::InvalidProbability`] outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(HraError::InvalidProbability(p));
        }
        Ok(Hep(p))
    }

    /// Estimates hep from observed counts: errors over opportunities.
    ///
    /// # Errors
    /// Returns [`HraError::EmptyModel`] for zero opportunities.
    pub fn from_observations(errors: u64, opportunities: u64) -> Result<Self> {
        if opportunities == 0 {
            return Err(HraError::EmptyModel("no opportunities observed"));
        }
        if errors > opportunities {
            return Err(HraError::InvalidProbability(
                errors as f64 / opportunities as f64,
            ));
        }
        Ok(Hep(errors as f64 / opportunities as f64))
    }

    /// The probability value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// `1 − hep`, the per-action success probability.
    pub fn complement(self) -> f64 {
        1.0 - self.0
    }

    /// Whether the value lies in the general human-error band reported by
    /// the HRA literature the paper surveys (0.001 to 0.1).
    pub fn is_within_literature_band(self) -> bool {
        (0.001..=0.1).contains(&self.0)
    }

    /// Whether the value lies in the enterprise / safety-critical band
    /// (0.001 to 0.01).
    pub fn is_within_enterprise_band(self) -> bool {
        (0.001..=0.01).contains(&self.0)
    }

    /// Probability that at least one of `n` independent actions errs:
    /// `1 − (1−hep)^n`, computed in a cancellation-free way.
    pub fn at_least_one_error_in(self, n: u64) -> f64 {
        if self.0 == 0.0 || n == 0 {
            return 0.0;
        }
        -((n as f64) * (-self.0).ln_1p()).exp_m1()
    }
}

impl fmt::Display for Hep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hep={}", self.0)
    }
}

impl TryFrom<f64> for Hep {
    type Error = HraError;

    fn try_from(p: f64) -> Result<Self> {
        Hep::new(p)
    }
}

impl From<Hep> for f64 {
    fn from(h: Hep) -> f64 {
        h.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Hep::new(0.0).is_ok());
        assert!(Hep::new(1.0).is_ok());
        assert!(Hep::new(-0.1).is_err());
        assert!(Hep::new(1.1).is_err());
        assert!(Hep::new(f64::NAN).is_err());
    }

    #[test]
    fn observation_estimator() {
        let h = Hep::from_observations(3, 1000).unwrap();
        assert!((h.value() - 0.003).abs() < 1e-15);
        assert!(Hep::from_observations(1, 0).is_err());
        assert!(Hep::from_observations(5, 3).is_err());
    }

    #[test]
    fn paper_bands() {
        assert!(Hep::new(0.001).unwrap().is_within_enterprise_band());
        assert!(Hep::new(0.01).unwrap().is_within_enterprise_band());
        assert!(!Hep::new(0.05).unwrap().is_within_enterprise_band());
        assert!(Hep::new(0.05).unwrap().is_within_literature_band());
        assert!(!Hep::new(0.5).unwrap().is_within_literature_band());
        assert!(!Hep::ZERO.is_within_literature_band());
    }

    #[test]
    fn at_least_one_error() {
        let h = Hep::new(0.01).unwrap();
        // 1 - 0.99^100 ≈ 0.634
        assert!((h.at_least_one_error_in(100) - 0.633_967_658_726_77).abs() < 1e-9);
        assert_eq!(Hep::ZERO.at_least_one_error_in(1000), 0.0);
        assert_eq!(h.at_least_one_error_in(0), 0.0);
        // Tiny hep stays precise.
        let tiny = Hep::new(1e-12).unwrap();
        assert!((tiny.at_least_one_error_in(10) - 1e-11).abs() < 1e-16);
    }

    #[test]
    fn conversions() {
        let h: Hep = 0.02f64.try_into().unwrap();
        let back: f64 = h.into();
        assert_eq!(back, 0.02);
        assert_eq!(h.complement(), 0.98);
        assert_eq!(h.to_string(), "hep=0.02");
    }
}
