//! THERP-style event trees (Swain & Guttmann, NUREG/CR-1278).
//!
//! A maintenance procedure is a sequence of steps; each step either succeeds
//! or errs with its own hep, and an erring step may still be *recovered* by a
//! later check. The tree evaluates the overall probability that the
//! procedure ends in an unrecovered error — the quantity that feeds the
//! availability models as the effective `hep`.

use crate::error::{HraError, Result};
use crate::hep::Hep;

/// One step of a procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureStep {
    /// Description, e.g. "identify failed disk by LED".
    pub name: String,
    /// Probability the step is performed incorrectly.
    pub hep: Hep,
    /// Probability that an error in this step is caught and corrected by a
    /// later check (0 = never recovered).
    pub recovery_probability: f64,
}

impl ProcedureStep {
    /// Creates a step.
    ///
    /// # Errors
    /// Returns [`HraError::InvalidProbability`] if the recovery probability
    /// is outside `[0, 1]`.
    pub fn new(name: impl Into<String>, hep: Hep, recovery_probability: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&recovery_probability) || !recovery_probability.is_finite() {
            return Err(HraError::InvalidProbability(recovery_probability));
        }
        Ok(ProcedureStep {
            name: name.into(),
            hep,
            recovery_probability,
        })
    }

    /// Probability this step produces an *unrecovered* error.
    pub fn unrecovered_error_probability(&self) -> f64 {
        self.hep.value() * (1.0 - self.recovery_probability)
    }
}

/// A linear THERP event tree: steps in sequence, any unrecovered error fails
/// the procedure.
#[derive(Debug, Clone, Default)]
pub struct EventTree {
    steps: Vec<ProcedureStep>,
}

impl EventTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: ProcedureStep) -> &mut Self {
        self.steps.push(step);
        self
    }

    /// The steps in order.
    pub fn steps(&self) -> &[ProcedureStep] {
        &self.steps
    }

    /// Probability the whole procedure completes without an unrecovered
    /// error.
    ///
    /// # Errors
    /// Returns [`HraError::EmptyModel`] for a tree with no steps.
    pub fn success_probability(&self) -> Result<f64> {
        if self.steps.is_empty() {
            return Err(HraError::EmptyModel("event tree has no steps"));
        }
        let p = self
            .steps
            .iter()
            .map(|s| 1.0 - s.unrecovered_error_probability())
            .product();
        Ok(p)
    }

    /// The procedure-level hep: `1 − success_probability`.
    ///
    /// # Errors
    /// Returns [`HraError::EmptyModel`] for a tree with no steps.
    pub fn overall_hep(&self) -> Result<Hep> {
        Hep::new(1.0 - self.success_probability()?)
    }

    /// The step contributing the most unrecovered error probability — where
    /// an extra check buys the most reliability.
    ///
    /// # Errors
    /// Returns [`HraError::EmptyModel`] for a tree with no steps.
    pub fn dominant_step(&self) -> Result<&ProcedureStep> {
        self.steps
            .iter()
            .max_by(|a, b| {
                a.unrecovered_error_probability()
                    .partial_cmp(&b.unrecovered_error_probability())
                    .expect("probabilities are finite")
            })
            .ok_or(HraError::EmptyModel("event tree has no steps"))
    }
}

/// The paper's disk-replacement procedure as a THERP tree: identify the
/// failed disk, pull it, insert the new disk, start the rebuild script.
///
/// # Errors
/// Never fails in practice; signature matches the fallible constructors.
pub fn disk_replacement_tree(base_hep: Hep) -> Result<EventTree> {
    let mut tree = EventTree::new();
    // Identification is the step the paper's "wrong disk replacement"
    // stems from; a second look at the slot LED recovers some errors.
    tree.push(ProcedureStep::new("identify failed disk", base_hep, 0.2)?);
    tree.push(ProcedureStep::new(
        "pull identified disk",
        Hep::new(base_hep.value() / 2.0)?,
        0.0,
    )?);
    tree.push(ProcedureStep::new(
        "insert replacement disk",
        Hep::new(base_hep.value() / 5.0)?,
        0.5,
    )?);
    tree.push(ProcedureStep::new(
        "run rebuild script",
        Hep::new(base_hep.value() / 2.0)?,
        0.3,
    )?);
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_tree() {
        let mut t = EventTree::new();
        t.push(ProcedureStep::new("only", Hep::new(0.01).unwrap(), 0.0).unwrap());
        assert!((t.overall_hep().unwrap().value() - 0.01).abs() < 1e-15);
    }

    #[test]
    fn recovery_reduces_effective_hep() {
        let raw = ProcedureStep::new("raw", Hep::new(0.01).unwrap(), 0.0).unwrap();
        let checked = ProcedureStep::new("checked", Hep::new(0.01).unwrap(), 0.9).unwrap();
        assert!(checked.unrecovered_error_probability() < raw.unrecovered_error_probability());
        assert!((checked.unrecovered_error_probability() - 0.001).abs() < 1e-15);
    }

    #[test]
    fn steps_compound() {
        let mut t = EventTree::new();
        for _ in 0..3 {
            t.push(ProcedureStep::new("s", Hep::new(0.01).unwrap(), 0.0).unwrap());
        }
        // 1 - 0.99^3
        let expect = 1.0 - 0.99f64.powi(3);
        assert!((t.overall_hep().unwrap().value() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_tree_errors() {
        assert!(EventTree::new().overall_hep().is_err());
        assert!(EventTree::new().dominant_step().is_err());
    }

    #[test]
    fn dominant_step_found() {
        let mut t = EventTree::new();
        t.push(ProcedureStep::new("minor", Hep::new(0.001).unwrap(), 0.0).unwrap());
        t.push(ProcedureStep::new("major", Hep::new(0.05).unwrap(), 0.1).unwrap());
        assert_eq!(t.dominant_step().unwrap().name, "major");
    }

    #[test]
    fn disk_replacement_tree_is_dominated_by_identification() {
        let t = disk_replacement_tree(Hep::new(0.01).unwrap()).unwrap();
        assert_eq!(t.steps().len(), 4);
        assert_eq!(t.dominant_step().unwrap().name, "identify failed disk");
        // Overall hep stays the same order of magnitude as the base.
        let overall = t.overall_hep().unwrap().value();
        assert!(overall > 0.005 && overall < 0.05, "overall {overall}");
    }

    #[test]
    fn invalid_recovery_rejected() {
        assert!(ProcedureStep::new("bad", Hep::new(0.01).unwrap(), 1.5).is_err());
        assert!(ProcedureStep::new("bad", Hep::new(0.01).unwrap(), -0.5).is_err());
    }
}
