//! # availsim-hra
//!
//! Human Reliability Assessment (HRA) substrate: quantification of the human
//! error probability (hep) that the availability models consume.
//!
//! * [`Hep`] — a validated probability newtype with the paper's literature
//!   and enterprise bands.
//! * [`sources`] — published hep ranges from the NASA / EUROCONTROL / NUREG
//!   reports the paper surveys.
//! * [`heart`] — HEART task-based quantification (generic tasks ×
//!   error-producing conditions).
//! * [`therp`] — THERP-style procedure event trees with per-step recovery.
//! * [`RecoveryModel`] — the dynamics of undoing a wrong disk replacement
//!   (`μ_he`, repeated attempts, crash escalation).
//!
//! # Examples
//!
//! Deriving the paper's hep band bottom-up from a HEART assessment:
//!
//! ```
//! use availsim_hra::heart::disk_replacement_example;
//!
//! # fn main() -> Result<(), availsim_hra::HraError> {
//! let hep = disk_replacement_example().hep()?;
//! assert!(hep.is_within_enterprise_band()); // lands in [0.001, 0.01]
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dependence;
mod error;
pub mod heart;
mod hep;
mod recovery;
pub mod sources;
pub mod therp;

pub use dependence::{all_attempts_fail, escalated, DependenceLevel};
pub use error::{HraError, Result};
pub use heart::{ErrorProducingCondition, GenericTask, HeartAssessment};
pub use hep::Hep;
pub use recovery::RecoveryModel;
pub use sources::{HepBand, HepSource, ENTERPRISE_RANGE, LITERATURE_RANGE};
pub use therp::{EventTree, ProcedureStep};
