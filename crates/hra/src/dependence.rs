//! THERP dependence model (Swain & Guttmann, NUREG/CR-1278, ch. 10).
//!
//! Consecutive actions by the same person are not independent: having just
//! erred, an operator is *more* likely to err again (stress, shared
//! misunderstanding). THERP grades this as five dependence levels and gives
//! the conditional error probability for each:
//!
//! | level | conditional hep |
//! |-------|-----------------|
//! | zero (ZD) | `p` |
//! | low (LD) | `(1 + 19p)/20` |
//! | moderate (MD) | `(1 + 6p)/7` |
//! | high (HD) | `(1 + p)/2` |
//! | complete (CD) | `1` |
//!
//! This matters directly for the paper's fail-over chain: the
//! `EXPns2 → DUns2` edge is a *second* error during recovery from a first
//! one — THERP says its probability should exceed the base hep.

use crate::error::Result;
use crate::hep::Hep;

/// THERP dependence level between two consecutive actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DependenceLevel {
    /// Independent actions.
    #[default]
    Zero,
    /// Weak coupling (different subtask, same session).
    Low,
    /// Moderate coupling (same subtask, short gap).
    Moderate,
    /// Strong coupling (immediately repeated action under stress).
    High,
    /// Deterministic repetition (same mistaken mental model).
    Complete,
}

impl DependenceLevel {
    /// Conditional error probability given the previous action erred.
    pub fn conditional_hep(self, base: Hep) -> Hep {
        let p = base.value();
        let cond = match self {
            DependenceLevel::Zero => p,
            DependenceLevel::Low => (1.0 + 19.0 * p) / 20.0,
            DependenceLevel::Moderate => (1.0 + 6.0 * p) / 7.0,
            DependenceLevel::High => (1.0 + p) / 2.0,
            DependenceLevel::Complete => 1.0,
        };
        Hep::new(cond.clamp(0.0, 1.0)).expect("conditional hep stays in [0,1]")
    }

    /// All levels, weakest to strongest.
    pub fn all() -> [DependenceLevel; 5] {
        [
            DependenceLevel::Zero,
            DependenceLevel::Low,
            DependenceLevel::Moderate,
            DependenceLevel::High,
            DependenceLevel::Complete,
        ]
    }

    /// The lowercase name used by spec files and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            DependenceLevel::Zero => "zero",
            DependenceLevel::Low => "low",
            DependenceLevel::Moderate => "moderate",
            DependenceLevel::High => "high",
            DependenceLevel::Complete => "complete",
        }
    }

    /// Parses a level from its lowercase [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        DependenceLevel::all().into_iter().find(|l| l.name() == s)
    }

    /// The THERP conditional formula as `1 − (1−p)·f`: the fraction `f`
    /// of the remaining success probability each conditional step keeps.
    fn success_fraction(self) -> f64 {
        match self {
            DependenceLevel::Zero => 1.0,
            DependenceLevel::Low => 19.0 / 20.0,
            DependenceLevel::Moderate => 6.0 / 7.0,
            DependenceLevel::High => 1.0 / 2.0,
            DependenceLevel::Complete => 0.0,
        }
    }
}

impl core::fmt::Display for DependenceLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-incident HEP of an operator already handling `concurrent` other
/// incidents: the base hep escalated by one THERP conditional step per
/// concurrent incident (workload and stress compound, NUREG/CR-1278
/// ch. 10). `concurrent = 0` returns the base hep exactly.
///
/// Every conditional step maps `p ↦ 1 − (1−p)·f` with the level's success
/// fraction `f` (e.g. 19/20 for low dependence), so `k` steps are the
/// closed form `1 − (1−p)·f^k` — evaluated directly rather than iterated,
/// keeping the cost independent of the incident count.
pub fn escalated(base: Hep, level: DependenceLevel, concurrent: u32) -> Hep {
    if concurrent == 0 || level == DependenceLevel::Zero {
        return base;
    }
    let f = level.success_fraction();
    let k = i32::try_from(concurrent).unwrap_or(i32::MAX);
    let p = 1.0 - (1.0 - base.value()) * f.powi(k);
    Hep::new(p.clamp(0.0, 1.0)).expect("escalated hep stays in [0,1]")
}

/// Probability that a sequence of `n` same-operator attempts *all* err,
/// with the given dependence between consecutive attempts — the quantity
/// that decides how long a DU outage persists under repeated recovery
/// attempts.
///
/// # Errors
/// Never fails for valid `Hep` inputs; result is a valid probability.
pub fn all_attempts_fail(base: Hep, level: DependenceLevel, attempts: u32) -> Result<Hep> {
    if attempts == 0 {
        return Hep::new(0.0);
    }
    let mut p = base.value();
    let cond = level.conditional_hep(base).value();
    for _ in 1..attempts {
        p *= cond;
    }
    Hep::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dependence_is_identity() {
        let base = Hep::new(0.01).unwrap();
        assert_eq!(DependenceLevel::Zero.conditional_hep(base).value(), 0.01);
    }

    #[test]
    fn levels_are_ordered() {
        let base = Hep::new(0.01).unwrap();
        let values: Vec<f64> = DependenceLevel::all()
            .iter()
            .map(|l| l.conditional_hep(base).value())
            .collect();
        for w in values.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
        assert_eq!(values[4], 1.0);
    }

    #[test]
    fn therp_table_values() {
        // NUREG/CR-1278 table 10-2 at p = 0.01.
        let base = Hep::new(0.01).unwrap();
        let ld = DependenceLevel::Low.conditional_hep(base).value();
        let md = DependenceLevel::Moderate.conditional_hep(base).value();
        let hd = DependenceLevel::High.conditional_hep(base).value();
        assert!((ld - 0.0595).abs() < 1e-4);
        assert!((md - 0.1514).abs() < 1e-3);
        assert!((hd - 0.505).abs() < 1e-3);
    }

    #[test]
    fn dependence_inflates_repeated_failure() {
        let base = Hep::new(0.01).unwrap();
        let independent = all_attempts_fail(base, DependenceLevel::Zero, 3).unwrap();
        let coupled = all_attempts_fail(base, DependenceLevel::High, 3).unwrap();
        // Independent: 1e-6; high dependence: 0.01 · 0.505² ≈ 2.6e-3.
        assert!((independent.value() - 1e-6).abs() < 1e-12);
        assert!(coupled.value() > 1e-3);
        assert!(coupled.value() / independent.value() > 1_000.0);
    }

    #[test]
    fn zero_attempts_cannot_fail() {
        let base = Hep::new(0.5).unwrap();
        assert_eq!(
            all_attempts_fail(base, DependenceLevel::Complete, 0)
                .unwrap()
                .value(),
            0.0
        );
    }

    #[test]
    fn complete_dependence_repeats_forever() {
        let base = Hep::new(0.25).unwrap();
        let p = all_attempts_fail(base, DependenceLevel::Complete, 10).unwrap();
        assert_eq!(p.value(), 0.25);
    }

    #[test]
    fn names_round_trip_and_reject_unknowns() {
        for level in DependenceLevel::all() {
            assert_eq!(DependenceLevel::parse(level.name()), Some(level));
            assert_eq!(level.to_string(), level.name());
        }
        assert_eq!(DependenceLevel::parse("severe"), None);
    }

    #[test]
    fn escalated_hep_matches_iterated_conditional_steps() {
        let base = Hep::new(0.01).unwrap();
        for level in DependenceLevel::all() {
            let mut iterated = base;
            for k in 0..6u32 {
                let closed = escalated(base, level, k).value();
                assert!(
                    (closed - iterated.value()).abs() < 1e-12,
                    "{level} at {k}: {closed} vs {}",
                    iterated.value()
                );
                iterated = level.conditional_hep(iterated);
            }
        }
    }

    #[test]
    fn escalation_is_monotone_in_concurrency_and_exact_at_zero() {
        let base = Hep::new(0.02).unwrap();
        // No concurrent incidents: the base hep, bit for bit.
        for level in DependenceLevel::all() {
            assert_eq!(
                escalated(base, level, 0).value().to_bits(),
                0.02f64.to_bits()
            );
        }
        let h = |k| escalated(base, DependenceLevel::High, k).value();
        assert!(h(1) > h(0) && h(2) > h(1) && h(3) > h(2));
        // Complete dependence saturates immediately; high converges to 1.
        assert_eq!(escalated(base, DependenceLevel::Complete, 1).value(), 1.0);
        assert!(h(40) > 1.0 - 1e-9);
    }
}
