//! THERP dependence model (Swain & Guttmann, NUREG/CR-1278, ch. 10).
//!
//! Consecutive actions by the same person are not independent: having just
//! erred, an operator is *more* likely to err again (stress, shared
//! misunderstanding). THERP grades this as five dependence levels and gives
//! the conditional error probability for each:
//!
//! | level | conditional hep |
//! |-------|-----------------|
//! | zero (ZD) | `p` |
//! | low (LD) | `(1 + 19p)/20` |
//! | moderate (MD) | `(1 + 6p)/7` |
//! | high (HD) | `(1 + p)/2` |
//! | complete (CD) | `1` |
//!
//! This matters directly for the paper's fail-over chain: the
//! `EXPns2 → DUns2` edge is a *second* error during recovery from a first
//! one — THERP says its probability should exceed the base hep.

use crate::error::Result;
use crate::hep::Hep;

/// THERP dependence level between two consecutive actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DependenceLevel {
    /// Independent actions.
    #[default]
    Zero,
    /// Weak coupling (different subtask, same session).
    Low,
    /// Moderate coupling (same subtask, short gap).
    Moderate,
    /// Strong coupling (immediately repeated action under stress).
    High,
    /// Deterministic repetition (same mistaken mental model).
    Complete,
}

impl DependenceLevel {
    /// Conditional error probability given the previous action erred.
    pub fn conditional_hep(self, base: Hep) -> Hep {
        let p = base.value();
        let cond = match self {
            DependenceLevel::Zero => p,
            DependenceLevel::Low => (1.0 + 19.0 * p) / 20.0,
            DependenceLevel::Moderate => (1.0 + 6.0 * p) / 7.0,
            DependenceLevel::High => (1.0 + p) / 2.0,
            DependenceLevel::Complete => 1.0,
        };
        Hep::new(cond.clamp(0.0, 1.0)).expect("conditional hep stays in [0,1]")
    }

    /// All levels, weakest to strongest.
    pub fn all() -> [DependenceLevel; 5] {
        [
            DependenceLevel::Zero,
            DependenceLevel::Low,
            DependenceLevel::Moderate,
            DependenceLevel::High,
            DependenceLevel::Complete,
        ]
    }
}

/// Probability that a sequence of `n` same-operator attempts *all* err,
/// with the given dependence between consecutive attempts — the quantity
/// that decides how long a DU outage persists under repeated recovery
/// attempts.
///
/// # Errors
/// Never fails for valid `Hep` inputs; result is a valid probability.
pub fn all_attempts_fail(base: Hep, level: DependenceLevel, attempts: u32) -> Result<Hep> {
    if attempts == 0 {
        return Hep::new(0.0);
    }
    let mut p = base.value();
    let cond = level.conditional_hep(base).value();
    for _ in 1..attempts {
        p *= cond;
    }
    Hep::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dependence_is_identity() {
        let base = Hep::new(0.01).unwrap();
        assert_eq!(DependenceLevel::Zero.conditional_hep(base).value(), 0.01);
    }

    #[test]
    fn levels_are_ordered() {
        let base = Hep::new(0.01).unwrap();
        let values: Vec<f64> = DependenceLevel::all()
            .iter()
            .map(|l| l.conditional_hep(base).value())
            .collect();
        for w in values.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
        assert_eq!(values[4], 1.0);
    }

    #[test]
    fn therp_table_values() {
        // NUREG/CR-1278 table 10-2 at p = 0.01.
        let base = Hep::new(0.01).unwrap();
        let ld = DependenceLevel::Low.conditional_hep(base).value();
        let md = DependenceLevel::Moderate.conditional_hep(base).value();
        let hd = DependenceLevel::High.conditional_hep(base).value();
        assert!((ld - 0.0595).abs() < 1e-4);
        assert!((md - 0.1514).abs() < 1e-3);
        assert!((hd - 0.505).abs() < 1e-3);
    }

    #[test]
    fn dependence_inflates_repeated_failure() {
        let base = Hep::new(0.01).unwrap();
        let independent = all_attempts_fail(base, DependenceLevel::Zero, 3).unwrap();
        let coupled = all_attempts_fail(base, DependenceLevel::High, 3).unwrap();
        // Independent: 1e-6; high dependence: 0.01 · 0.505² ≈ 2.6e-3.
        assert!((independent.value() - 1e-6).abs() < 1e-12);
        assert!(coupled.value() > 1e-3);
        assert!(coupled.value() / independent.value() > 1_000.0);
    }

    #[test]
    fn zero_attempts_cannot_fail() {
        let base = Hep::new(0.5).unwrap();
        assert_eq!(
            all_attempts_fail(base, DependenceLevel::Complete, 0)
                .unwrap()
                .value(),
            0.0
        );
    }

    #[test]
    fn complete_dependence_repeats_forever() {
        let base = Hep::new(0.25).unwrap();
        let p = all_attempts_fail(base, DependenceLevel::Complete, 10).unwrap();
        assert_eq!(p.value(), 0.25);
    }
}
