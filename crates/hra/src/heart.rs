//! HEART (Human Error Assessment and Reduction Technique) quantification.
//!
//! HEART computes a task hep as a *generic task type* base probability
//! multiplied by each applicable *error-producing condition* (EPC), scaled by
//! the assessed proportion of the condition's effect:
//!
//! `hep = base · Π_i (1 + (EPC_i − 1) · proportion_i)`, capped at 1.
//!
//! Reference: J.C. Williams, "A data-based method for assessing and reducing
//! human error to improve operational performance", IEEE HFPP 1988.

use crate::error::{HraError, Result};
use crate::hep::Hep;

/// HEART generic task types with their nominal error probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenericTask {
    /// A: Totally unfamiliar task, performed at speed, no idea of outcome.
    TotallyUnfamiliar,
    /// C: Complex task requiring a high level of comprehension and skill.
    Complex,
    /// E: Routine, highly-practised, rapid task involving a relatively low
    /// level of skill.
    RoutinePractised,
    /// F: Restore or shift a system to original or new state following
    /// procedures, with some checking — the disk-replacement task class.
    RestoreByProcedure,
    /// G: Completely familiar, well-designed, highly practised routine task.
    FamiliarRoutine,
}

impl GenericTask {
    /// The nominal hep for the task class (HEART table, point estimates).
    pub fn nominal_hep(self) -> f64 {
        match self {
            GenericTask::TotallyUnfamiliar => 0.55,
            GenericTask::Complex => 0.16,
            GenericTask::RoutinePractised => 0.02,
            GenericTask::RestoreByProcedure => 0.003,
            GenericTask::FamiliarRoutine => 0.0004,
        }
    }
}

/// An error-producing condition with its maximum multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProducingCondition {
    /// Short description.
    pub name: String,
    /// Maximum multiplier when the condition fully applies (HEART table).
    pub max_multiplier: f64,
    /// Assessed proportion of the effect in `[0, 1]`.
    pub assessed_proportion: f64,
}

impl ErrorProducingCondition {
    /// Creates a condition with a validated proportion.
    ///
    /// # Errors
    /// Returns [`HraError::InvalidProportion`] for proportions outside
    /// `[0, 1]` or non-positive multipliers.
    pub fn new(
        name: impl Into<String>,
        max_multiplier: f64,
        assessed_proportion: f64,
    ) -> Result<Self> {
        let name = name.into();
        if !(0.0..=1.0).contains(&assessed_proportion) || !assessed_proportion.is_finite() {
            return Err(HraError::InvalidProportion {
                condition: name,
                value: assessed_proportion,
            });
        }
        if !(max_multiplier.is_finite() && max_multiplier >= 1.0) {
            return Err(HraError::InvalidProportion {
                condition: name,
                value: max_multiplier,
            });
        }
        Ok(ErrorProducingCondition {
            name,
            max_multiplier,
            assessed_proportion,
        })
    }

    /// The effective multiplier `1 + (max − 1) · proportion`.
    pub fn effective_multiplier(&self) -> f64 {
        1.0 + (self.max_multiplier - 1.0) * self.assessed_proportion
    }
}

/// A HEART assessment: a generic task plus its conditions.
#[derive(Debug, Clone, Default)]
pub struct HeartAssessment {
    task: Option<GenericTask>,
    conditions: Vec<ErrorProducingCondition>,
}

impl HeartAssessment {
    /// Starts an assessment for a generic task class.
    pub fn new(task: GenericTask) -> Self {
        HeartAssessment {
            task: Some(task),
            conditions: Vec::new(),
        }
    }

    /// Adds an error-producing condition.
    ///
    /// # Errors
    /// Propagates validation errors from [`ErrorProducingCondition::new`].
    pub fn condition(
        &mut self,
        name: impl Into<String>,
        max_multiplier: f64,
        assessed_proportion: f64,
    ) -> Result<&mut Self> {
        self.conditions.push(ErrorProducingCondition::new(
            name,
            max_multiplier,
            assessed_proportion,
        )?);
        Ok(self)
    }

    /// Computes the assessed hep, capped at 1.
    ///
    /// # Errors
    /// Returns [`HraError::EmptyModel`] if no task class was set.
    pub fn hep(&self) -> Result<Hep> {
        let task = self
            .task
            .ok_or(HraError::EmptyModel("no generic task selected"))?;
        let mut p = task.nominal_hep();
        for c in &self.conditions {
            p *= c.effective_multiplier();
        }
        Hep::new(p.min(1.0))
    }

    /// The conditions applied so far.
    pub fn conditions(&self) -> &[ErrorProducingCondition] {
        &self.conditions
    }
}

/// The worked example for the paper's scenario: a trained technician
/// replacing a failed disk by procedure, under time pressure, with
/// similar-looking disk slots.
///
/// The resulting hep lands in the enterprise band `[0.001, 0.01]` the paper
/// uses, providing a bottom-up justification for its sweep values.
pub fn disk_replacement_example() -> HeartAssessment {
    let mut a = HeartAssessment::new(GenericTask::RestoreByProcedure);
    a.condition("similar-looking slots (poor discriminability)", 8.0, 0.1)
        .expect("valid proportion")
        .condition("time pressure from degraded array", 11.0, 0.05)
        .expect("valid proportion");
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_task_without_conditions_is_nominal() {
        let a = HeartAssessment::new(GenericTask::RestoreByProcedure);
        assert!((a.hep().unwrap().value() - 0.003).abs() < 1e-15);
    }

    #[test]
    fn conditions_multiply() {
        let mut a = HeartAssessment::new(GenericTask::RoutinePractised);
        a.condition("full effect x3", 3.0, 1.0).unwrap();
        // 0.02 * 3 = 0.06
        assert!((a.hep().unwrap().value() - 0.06).abs() < 1e-12);
        a.condition("half effect of x11", 11.0, 0.5).unwrap();
        // 0.06 * (1 + 10*0.5) = 0.06 * 6 = 0.36
        assert!((a.hep().unwrap().value() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn hep_is_capped_at_one() {
        let mut a = HeartAssessment::new(GenericTask::TotallyUnfamiliar);
        a.condition("x17", 17.0, 1.0).unwrap();
        assert_eq!(a.hep().unwrap().value(), 1.0);
    }

    #[test]
    fn zero_proportion_is_neutral() {
        let c = ErrorProducingCondition::new("irrelevant", 10.0, 0.0).unwrap();
        assert_eq!(c.effective_multiplier(), 1.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ErrorProducingCondition::new("bad", 10.0, 1.5).is_err());
        assert!(ErrorProducingCondition::new("bad", 10.0, -0.1).is_err());
        assert!(ErrorProducingCondition::new("bad", 0.5, 0.5).is_err());
        assert!(HeartAssessment::default().hep().is_err());
    }

    #[test]
    fn disk_replacement_example_lands_in_enterprise_band() {
        let hep = disk_replacement_example().hep().unwrap();
        assert!(
            hep.is_within_enterprise_band(),
            "disk replacement hep {} outside [0.001, 0.01]",
            hep.value()
        );
    }

    #[test]
    fn task_ordering_is_sane() {
        // Unfamiliar > complex > routine > procedural > familiar.
        let order = [
            GenericTask::TotallyUnfamiliar,
            GenericTask::Complex,
            GenericTask::RoutinePractised,
            GenericTask::RestoreByProcedure,
            GenericTask::FamiliarRoutine,
        ];
        for w in order.windows(2) {
            assert!(w[0].nominal_hep() > w[1].nominal_hep());
        }
    }
}
