//! Human-error recovery model: how long it takes to detect and undo a wrong
//! replacement, and the chance of compounding the error while trying.
//!
//! This mirrors the paper's `DU` dynamics: recovery completes at rate
//! `μ_he`, succeeds with probability `1 − hep` (another error leaves the
//! system down), and while the wrongly pulled disk sits outside the chassis
//! it may crash at rate `λ_crash`, escalating the outage into data loss.

use crate::error::{HraError, Result};
use crate::hep::Hep;

/// Parameters of the recovery process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryModel {
    /// Rate (per hour) of completing a recovery attempt (`μ_he`).
    pub attempt_rate: f64,
    /// Probability that an attempt itself errs (same `hep` as the original
    /// action, in the paper's model).
    pub hep: Hep,
    /// Crash rate of the removed disk while it waits outside (`λ_crash`).
    pub removed_disk_crash_rate: f64,
}

impl RecoveryModel {
    /// Creates a validated model.
    ///
    /// # Errors
    /// Returns [`HraError::InvalidProbability`] for non-positive or non-finite
    /// rates.
    pub fn new(attempt_rate: f64, hep: Hep, removed_disk_crash_rate: f64) -> Result<Self> {
        if !(attempt_rate.is_finite() && attempt_rate > 0.0) {
            return Err(HraError::InvalidProbability(attempt_rate));
        }
        if !(removed_disk_crash_rate.is_finite() && removed_disk_crash_rate >= 0.0) {
            return Err(HraError::InvalidProbability(removed_disk_crash_rate));
        }
        Ok(RecoveryModel {
            attempt_rate,
            hep,
            removed_disk_crash_rate,
        })
    }

    /// The paper's defaults: `μ_he = 1`, `λ_crash = 0.01`.
    ///
    /// # Errors
    /// Never fails for the fixed defaults; propagates the signature of
    /// [`RecoveryModel::new`].
    pub fn paper_defaults(hep: Hep) -> Result<Self> {
        RecoveryModel::new(1.0, hep, 0.01)
    }

    /// Effective rate of *successful* recovery: `(1 − hep) · μ_he`.
    /// Failed attempts leave the system in the same down state, which in a
    /// CTMC is exactly a thinning of the recovery rate.
    pub fn effective_recovery_rate(&self) -> f64 {
        self.hep.complement() * self.attempt_rate
    }

    /// Mean outage duration (hours) of a human-error outage, ignoring
    /// crash escalation: `1 / ((1−hep)·μ_he)`.
    pub fn mean_outage_hours(&self) -> f64 {
        1.0 / self.effective_recovery_rate()
    }

    /// Probability the outage escalates to data loss (the removed disk
    /// crashes before recovery succeeds): a race of two exponential clocks,
    /// `λ_crash / (λ_crash + (1−hep)·μ_he)`.
    pub fn escalation_probability(&self) -> f64 {
        let r = self.effective_recovery_rate();
        self.removed_disk_crash_rate / (self.removed_disk_crash_rate + r)
    }

    /// Expected number of attempts until success (geometric distribution):
    /// `1 / (1 − hep)`.
    pub fn expected_attempts(&self) -> f64 {
        1.0 / self.hep.complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_values() {
        let m = RecoveryModel::paper_defaults(Hep::new(0.01).unwrap()).unwrap();
        assert_eq!(m.attempt_rate, 1.0);
        assert_eq!(m.removed_disk_crash_rate, 0.01);
        assert!((m.effective_recovery_rate() - 0.99).abs() < 1e-12);
        assert!((m.mean_outage_hours() - 1.0 / 0.99).abs() < 1e-12);
    }

    #[test]
    fn escalation_probability_is_a_rate_race() {
        let m = RecoveryModel::paper_defaults(Hep::new(0.01).unwrap()).unwrap();
        let expect = 0.01 / (0.01 + 0.99);
        assert!((m.escalation_probability() - expect).abs() < 1e-12);
        // Faster recovery -> less escalation.
        let fast = RecoveryModel::new(10.0, Hep::new(0.01).unwrap(), 0.01).unwrap();
        assert!(fast.escalation_probability() < m.escalation_probability());
    }

    #[test]
    fn expected_attempts_grows_with_hep() {
        let low = RecoveryModel::paper_defaults(Hep::new(0.001).unwrap()).unwrap();
        let high = RecoveryModel::paper_defaults(Hep::new(0.5).unwrap()).unwrap();
        assert!(low.expected_attempts() < high.expected_attempts());
        assert!((high.expected_attempts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_hep_recovers_at_full_rate() {
        let m = RecoveryModel::paper_defaults(Hep::ZERO).unwrap();
        assert_eq!(m.effective_recovery_rate(), 1.0);
        assert_eq!(m.expected_attempts(), 1.0);
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(RecoveryModel::new(0.0, Hep::ZERO, 0.01).is_err());
        assert!(RecoveryModel::new(1.0, Hep::ZERO, -1.0).is_err());
        assert!(RecoveryModel::new(f64::NAN, Hep::ZERO, 0.0).is_err());
    }
}
