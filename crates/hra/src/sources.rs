//! Published hep bands from the HRA sources the paper surveys.
//!
//! The paper collects hep values "obtained by NASA, EUROCONTROL, and NUREG"
//! and reports a 0.001–0.1 overall range, narrowing to 0.001–0.01 for
//! enterprise and safety-critical applications. These tables encode that
//! provenance so experiments can cite the band they draw from.

use crate::hep::Hep;

/// Where a published hep band comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HepSource {
    /// NASA human-error analysis (Chandler et al., 2010).
    Nasa,
    /// EUROCONTROL feasibility study on hep data collection (Gibson et al.,
    /// 2006).
    Eurocontrol,
    /// NUREG / Reactor Safety Study (WASH-1400, 1975) and the THERP handbook
    /// (Swain & Guttmann, 1983).
    Nureg,
}

/// A published band of human-error probabilities for a task class.
#[derive(Debug, Clone, PartialEq)]
pub struct HepBand {
    /// Source of the band.
    pub source: HepSource,
    /// Task description as characterized by the source.
    pub task: &'static str,
    /// Lower end of the band.
    pub low: f64,
    /// Upper end of the band.
    pub high: f64,
}

impl HepBand {
    /// Geometric midpoint of the band — the conventional point estimate when
    /// only a range is published.
    pub fn nominal(&self) -> Hep {
        Hep::new((self.low * self.high).sqrt()).expect("bands are valid by construction")
    }

    /// Whether a hep value falls inside the band.
    pub fn contains(&self, hep: Hep) -> bool {
        (self.low..=self.high).contains(&hep.value())
    }
}

/// The reference bands used throughout the experiments.
pub fn reference_bands() -> Vec<HepBand> {
    vec![
        HepBand {
            source: HepSource::Nureg,
            task: "routine simple task, trained operator",
            low: 0.001,
            high: 0.01,
        },
        HepBand {
            source: HepSource::Nureg,
            task: "non-routine task under moderate stress",
            low: 0.01,
            high: 0.1,
        },
        HepBand {
            source: HepSource::Nasa,
            task: "procedural maintenance step with checklist",
            low: 0.001,
            high: 0.01,
        },
        HepBand {
            source: HepSource::Eurocontrol,
            task: "selection of wrong similar item (e.g. wrong disk slot)",
            low: 0.001,
            high: 0.01,
        },
        HepBand {
            source: HepSource::Eurocontrol,
            task: "complex diagnosis under time pressure",
            low: 0.01,
            high: 0.1,
        },
    ]
}

/// The overall literature range quoted by the paper: `[0.001, 0.1]`.
pub const LITERATURE_RANGE: (f64, f64) = (0.001, 0.1);

/// The enterprise / safety-critical range quoted by the paper:
/// `[0.001, 0.01]`.
pub const ENTERPRISE_RANGE: (f64, f64) = (0.001, 0.01);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bands_are_inside_the_literature_range() {
        for band in reference_bands() {
            assert!(band.low >= LITERATURE_RANGE.0, "{}", band.task);
            assert!(band.high <= LITERATURE_RANGE.1, "{}", band.task);
            assert!(band.low < band.high);
        }
    }

    #[test]
    fn nominal_is_inside_band() {
        for band in reference_bands() {
            let n = band.nominal();
            assert!(
                band.contains(n),
                "{}: nominal {} outside band",
                band.task,
                n.value()
            );
        }
    }

    #[test]
    fn wrong_disk_band_matches_paper_experiments() {
        // The paper sweeps hep ∈ {0.001, 0.01}; both endpoints must be
        // covered by the wrong-item selection band.
        let bands = reference_bands();
        let wrong_disk = bands
            .iter()
            .find(|b| b.task.contains("wrong disk"))
            .expect("band exists");
        assert!(wrong_disk.contains(Hep::new(0.001).unwrap()));
        assert!(wrong_disk.contains(Hep::new(0.01).unwrap()));
    }

    #[test]
    fn sources_are_distinguishable() {
        use std::collections::HashSet;
        let sources: HashSet<_> = reference_bands().iter().map(|b| b.source).collect();
        assert_eq!(sources.len(), 3);
    }
}
