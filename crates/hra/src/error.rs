//! Error types for the human-reliability crate.

use std::error::Error;
use std::fmt;

/// Errors from HRA model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum HraError {
    /// A probability was outside `[0, 1]`.
    InvalidProbability(f64),
    /// A HEART assessed proportion was outside `[0, 1]`.
    InvalidProportion {
        /// Name of the error-producing condition.
        condition: String,
        /// The offending proportion.
        value: f64,
    },
    /// A model was given no data to work with.
    EmptyModel(&'static str),
    /// A THERP tree referenced an unknown node.
    UnknownNode(String),
}

impl fmt::Display for HraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HraError::InvalidProbability(p) => {
                write!(f, "probability {p} outside the interval [0, 1]")
            }
            HraError::InvalidProportion { condition, value } => {
                write!(
                    f,
                    "assessed proportion {value} for `{condition}` outside [0, 1]"
                )
            }
            HraError::EmptyModel(what) => write!(f, "empty model: {what}"),
            HraError::UnknownNode(name) => write!(f, "unknown node `{name}` in event tree"),
        }
    }
}

impl Error for HraError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, HraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(HraError::InvalidProbability(2.0).to_string().contains("2"));
        let e = HraError::InvalidProportion {
            condition: "stress".into(),
            value: -1.0,
        };
        assert!(e.to_string().contains("stress"));
    }
}
