//! Beyond the paper: sizing a scrubbing policy against latent sector
//! errors (LSEs), then pricing the residual risk in the human-error-aware
//! availability chain.
//!
//! ```text
//! cargo run --release --example scrubbing_policy
//! ```

use availsim::core::markov::GenericKofN;
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::storage::{RaidGeometry, ScrubbingModel, HOURS_PER_YEAR};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let geometry = RaidGeometry::raid5(7)?;
    let lambda = 1e-5;
    let hep = Hep::new(0.001)?;
    let params = ModelParams::paper_defaults(geometry, lambda, hep)?;
    let surviving = geometry.total_disks() - 1;

    println!(
        "RAID5(7+1), λ={lambda:.0e}, hep={}, field LSE rate\n",
        hep.value()
    );
    println!(
        "{:>14} {:>22} {:>12} {:>14}",
        "scrub period", "P(LSE during rebuild)", "nines", "MTTDL (yr)"
    );

    let lse_rate = ScrubbingModel::field_defaults().lse_rate;
    for &days in &[3.0, 7.0, 14.0, 30.0, 90.0] {
        let scrub = ScrubbingModel::new(lse_rate, days * 24.0)?;
        let p_ue = scrub.rebuild_failure_probability(surviving);
        let model = GenericKofN::new(params)?.with_rebuild_failure_probability(p_ue);
        let solved = model.solve()?;
        println!(
            "{:>11} d {:>22.5} {:>12.3} {:>14.0}",
            days,
            p_ue,
            solved.nines(),
            model.mttdl_hours()? / HOURS_PER_YEAR
        );
    }

    // And the never-scrubbed baseline vs the no-LSE ideal.
    let never = ScrubbingModel::new(lse_rate, 10.0 * HOURS_PER_YEAR)?;
    let p_never = never.rebuild_failure_probability(surviving);
    let worst = GenericKofN::new(params)?.with_rebuild_failure_probability(p_never);
    let ideal = GenericKofN::new(params)?;
    println!(
        "{:>13} {:>22.5} {:>12.3} {:>14.0}",
        "no scrub",
        p_never,
        worst.solve()?.nines(),
        worst.mttdl_hours()? / HOURS_PER_YEAR
    );
    println!(
        "{:>13} {:>22} {:>12.3} {:>14.0}",
        "no LSEs",
        "0",
        ideal.solve()?.nines(),
        ideal.mttdl_hours()? / HOURS_PER_YEAR
    );

    // Inverse question: how often must we scrub for p_ue <= 1e-4?
    let needed = ScrubbingModel::required_scrub_interval(lse_rate, surviving, 1e-4)?;
    println!(
        "\nto keep P(LSE during rebuild) <= 1e-4, scrub every {:.1} days",
        needed / 24.0
    );
    println!("\nnote: a lazy scrub costs ~1.4 nines and a 27x shorter MTTDL at these");
    println!("rates — the LSE term competes head-on with the paper's human-error");
    println!("term, and both drop out of the same chain with one `solve()`.");
    Ok(())
}
