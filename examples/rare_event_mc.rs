//! Beyond the paper: estimating 1e-9-scale unavailability with Monte-Carlo.
//!
//! Naive MC needs ~100/U missions to resolve an unavailability U; at the
//! paper's λ = 1e-6 operating point that is hundreds of thousands of
//! ten-year missions. This example shows the practical recipe:
//!
//! 1. use the Markov model for the point estimate (exact, microseconds),
//! 2. validate it with MC at a *scaled* operating point (paper's Fig. 4
//!    methodology),
//! 3. validate it **at the target point itself** with the rare-event mode
//!    (`McVariance::FailureBiasing`), reading the ESS diagnostic,
//! 4. for tail probabilities of single distributions, use importance
//!    sampling (`availsim_sim::rare_event`) and check the effective sample
//!    size.
//!
//! ```text
//! cargo run --release --example rare_event_mc
//! ```

use availsim::core::markov::Raid5Conventional;
use availsim::core::mc::{ConventionalMc, McConfig, McVariance};
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::sim::distributions::{Exponential, Lifetime};
use availsim::sim::rare_event::ImportanceSampler;
use availsim::sim::rng::SimRng;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The target operating point is MC-hostile.
    let target = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01)?)?;
    let markov_u = Raid5Conventional::new(target)?.solve()?.unavailability();
    println!("target point λ=1e-6, hep=0.01: Markov U = {markov_u:.3e}");
    println!(
        "naive MC would need ≳ {:.0e} ten-year missions for 10% relative error\n",
        100.0 / markov_u / 87_600.0 * 8.76e4
    );

    // 2. Validate the chain where MC converges in seconds, then trust the
    //    chain at the target (the paper's Fig. 4 logic).
    let scaled = target.with_failure_rate(1e-3)?;
    let markov_scaled = Raid5Conventional::new(scaled)?.solve()?;
    let t0 = Instant::now();
    let est = ConventionalMc::new(scaled)?.run(&McConfig {
        iterations: 4_000,
        horizon_hours: 20_000.0,
        seed: 11,
        confidence: 0.99,
        threads: 0,
        ..McConfig::default()
    })?;
    println!(
        "scaled point λ=1e-3: MC {} vs Markov {:.6} ({} in {:.2?})",
        est.availability,
        markov_scaled.availability(),
        if est.is_consistent_with(markov_scaled.availability()) {
            "consistent"
        } else {
            "INCONSISTENT"
        },
        t0.elapsed()
    );

    // 3. The rare-event mode attacks the target point head on: failure
    //    forcing + balanced failure biasing make every mission informative
    //    and the likelihood-ratio weights keep the estimator unbiased.
    let t0 = Instant::now();
    let biased = ConventionalMc::new(target)?.run(&McConfig {
        iterations: 20_000,
        seed: 12,
        variance: McVariance::failure_biasing(),
        ..McConfig::default()
    })?;
    println!(
        "\ntarget point, failure biasing: U = {:.3e} (Markov {markov_u:.3e}, {} in {:.2?})",
        biased.unavailability(),
        if biased.is_consistent_with_unavailability(markov_u) {
            "consistent"
        } else {
            "INCONSISTENT"
        },
        t0.elapsed()
    );
    println!(
        "  diagnostics: ESS {:.0} of {} missions, max weight {:.3e}",
        biased.effective_sample_size, biased.iterations, biased.max_weight
    );

    // 4. Importance sampling for a rare tail: P(disk survives 20 MTTFs).
    let nominal = Exponential::new(1.0)?;
    let proposal = Exponential::new(1.0 / 20.0)?;
    let truth = 1.0 - nominal.cdf(20.0);
    let sampler = ImportanceSampler::new(nominal, proposal);
    let mut rng = SimRng::seed_from(42);
    let stats = sampler.estimate_tail(&mut rng, 20.0, 100_000)?;
    println!("\nimportance sampling, P(X > 20·MTTF):");
    println!("  truth     = {truth:.4e}");
    println!(
        "  estimate  = {:.4e} ± {:.1e}",
        stats.estimate(),
        stats.standard_error()
    );
    println!(
        "  effective sample size: {:.0} of {}",
        stats.effective_sample_size(),
        stats.count()
    );

    let naive_hits = {
        let mut rng = SimRng::seed_from(43);
        let d = Exponential::new(1.0)?;
        (0..100_000).filter(|_| d.sample(&mut rng) > 20.0).count()
    };
    println!("  naive MC with the same budget: {naive_hits} hits (useless at this scale)");
    Ok(())
}
