//! The paper's Fig. 6 as a planning tool: which RAID organization gives the
//! best availability at equal usable capacity, once human error is priced
//! in? Includes the RAID6 extension (beyond the paper).
//!
//! ```text
//! cargo run --release --example raid_comparison [lambda] [usable_capacity]
//! ```

use availsim::core::markov::GenericKofN;
use availsim::core::volume::compare_equal_capacity;
use availsim::core::{nines, ModelParams};
use availsim::hra::Hep;
use availsim::storage::{RaidGeometry, Volume};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let lambda: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1e-5);
    let usable: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(21);

    println!("Equal usable capacity: {usable} disk units, λ = {lambda:.1e}/h\n");
    println!(
        "{:<12} {:>7} {:>6} {:>6} {:>9} {:>11} {:>10}",
        "config", "arrays", "disks", "ERF", "hep=0", "hep=0.001", "hep=0.01"
    );

    let heps = [0.0, 0.001, 0.01];
    let mut rows: Vec<(String, u64, u64, f64, Vec<f64>)> = Vec::new();
    for (i, row) in compare_equal_capacity(usable, lambda, Hep::ZERO)?
        .iter()
        .enumerate()
    {
        let mut nines_cols = Vec::new();
        for &h in &heps {
            let r = compare_equal_capacity(usable, lambda, Hep::new(h)?)?;
            nines_cols.push(r[i].nines());
        }
        rows.push((
            row.label.clone(),
            row.arrays,
            row.total_disks,
            row.erf,
            nines_cols,
        ));
    }

    // RAID6 extension: the generic (f, w) chain prices human error for k+2.
    if usable.is_multiple_of(7) {
        let geometry = RaidGeometry::raid6(7)?;
        let volume = Volume::with_usable_capacity(geometry, usable)?;
        let mut nines_cols = Vec::new();
        for &h in &heps {
            let params = ModelParams::paper_defaults(geometry, lambda, Hep::new(h)?)?;
            let u = GenericKofN::new(params)?.solve()?.unavailability();
            nines_cols.push(nines::nines_from_unavailability(
                volume.series_unavailability(u),
            ));
        }
        rows.push((
            format!("{} *", geometry.label()),
            volume.arrays(),
            volume.total_disks(),
            geometry.effective_replication_factor(),
            nines_cols,
        ));
    }

    for (label, arrays, disks, erf, cols) in &rows {
        println!(
            "{:<12} {:>7} {:>6} {:>6.2} {:>9.3} {:>11.3} {:>10.3}",
            label, arrays, disks, erf, cols[0], cols[1], cols[2]
        );
    }
    println!("\n(* RAID6 via the generic k+m chain — an extension beyond the paper)");

    // The paper's takeaway, recomputed live.
    let base = &rows[0];
    let best_with_hep = rows
        .iter()
        .take(3)
        .max_by(|a, b| a.4[2].partial_cmp(&b.4[2]).expect("finite"))
        .expect("non-empty");
    if base.4[0] > best_with_hep.4[0] - 1e-9 && base.0 != best_with_hep.0 {
        println!(
            "\nranking inversion: {} leads at hep=0, but {} leads at hep=0.01 —",
            base.0, best_with_hep.0
        );
        println!("higher ERF means more disks, more service actions, more human-error exposure.");
    }
    Ok(())
}
