//! Quickstart: how much does human error cost a RAID5 (3+1) array?
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Solves the paper's Fig. 2 Markov model at three human-error
//! probabilities and prints availability, nines, and downtime per year.

use availsim::core::markov::{Raid5Conventional, Raid5FailOver};
use availsim::core::{nines, ModelParams};
use availsim::hra::Hep;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("RAID5 (3+1), λ = 1e-6/h, paper service rates (μ_DF=0.1, μ_DDF=0.03, μ_he=1)\n");
    println!(
        "{:<10} {:>14} {:>8} {:>16} {:>18}",
        "hep", "unavailability", "nines", "downtime/yr", "with fail-over"
    );

    for hep in [0.0, 0.001, 0.01] {
        let params = ModelParams::raid5_3plus1(1e-6, Hep::new(hep)?)?;
        let conventional = Raid5Conventional::new(params)?.solve()?;
        let failover = Raid5FailOver::new(params)?.solve()?;
        println!(
            "{:<10} {:>14.3e} {:>8.2} {:>13.4} min {:>15.4} min",
            hep,
            conventional.unavailability(),
            conventional.nines(),
            conventional.downtime_minutes_per_year(),
            failover.downtime_minutes_per_year(),
        );
    }

    println!();
    let clean = Raid5Conventional::new(ModelParams::raid5_3plus1(1e-6, Hep::ZERO)?)?.solve()?;
    let dirty =
        Raid5Conventional::new(ModelParams::raid5_3plus1(1e-6, Hep::new(0.01)?)?)?.solve()?;
    println!(
        "ignoring hep=0.01 underestimates downtime {:.0}x ({} -> {})",
        dirty.unavailability() / clean.unavailability(),
        nines::summarize(clean.availability()),
        nines::summarize(dirty.availability()),
    );
    Ok(())
}
