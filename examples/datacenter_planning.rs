//! The paper's introduction as arithmetic: an exabyte datacenter sees a
//! disk failure every hour, so at hep ∈ [0.001, 0.1] human errors are a
//! *daily* event — and the fleet's availability budget must price them in.
//!
//! ```text
//! cargo run --release --example datacenter_planning [capacity_EB] [disk_TB]
//! ```

use availsim::core::markov::{Raid5Conventional, Raid5FailOver};
use availsim::core::ModelParams;
use availsim::hra::heart::disk_replacement_example;
use availsim::storage::{DatacenterModel, RaidGeometry, Volume};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let capacity_eb: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let disk_tb: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let lambda = 1e-6;

    // Bottom-up hep from the HEART worked example (lands in the paper's
    // enterprise band).
    let hep = disk_replacement_example().hep()?;
    println!("datacenter: {capacity_eb} EB on {disk_tb} TB disks, λ = {lambda:.0e}/h");
    println!(
        "hep from HEART disk-replacement assessment: {:.4}\n",
        hep.value()
    );

    let dc = DatacenterModel::exascale(disk_tb / capacity_eb, lambda, hep.value())?;
    println!("fleet size:                {:>12} disks", dc.num_disks());
    println!(
        "expected disk failures:    {:>12.1} per day ({:.2} per hour)",
        dc.expected_failures_per_day(),
        dc.expected_failures_per_hour()
    );
    println!(
        "expected human errors:     {:>12.2} per day ({:.0} per year)",
        dc.expected_human_errors_per_day(),
        dc.expected_human_errors_per_year()
    );

    // Fleet-level availability: all capacity in RAID5(3+1) volumes.
    let geometry = RaidGeometry::raid5(3)?;
    let arrays = dc.num_disks() / u64::from(geometry.total_disks());
    let volume = Volume::new(geometry, arrays);
    let params = ModelParams::paper_defaults(geometry, lambda, hep)?;
    let conv = Raid5Conventional::new(params)?.solve()?;
    let fo = Raid5FailOver::new(params)?.solve()?;

    println!(
        "\nper-array unavailability:  conventional {:.3e} | fail-over {:.3e}",
        conv.unavailability(),
        fo.unavailability()
    );
    println!(
        "fleet expected arrays down: conventional {:.2} | fail-over {:.3}",
        arrays as f64 * conv.unavailability(),
        arrays as f64 * fo.unavailability()
    );
    println!(
        "probability all {arrays} arrays up: conventional {:.3e} | fail-over {:.4}",
        volume.series_availability(conv.availability()),
        volume.series_availability(fo.availability())
    );

    println!("\ntakeaway: at fleet scale the human-error term is not a tail risk —");
    println!("it is the dominant, daily driver of the availability budget, and");
    println!("automatic fail-over is the single most effective mitigation.");
    Ok(())
}
