//! Beyond the paper: transient (mission-time) availability.
//!
//! Steady-state numbers hide when the risk arrives. This example plots
//! A(t) — the probability the array is serving I/O at mission hour t — and
//! the interval availability over [0, t], for both replacement policies.
//!
//! ```text
//! cargo run --release --example mission_availability
//! ```

use availsim::core::sensitivity::PolicyModel;
use availsim::core::transient::TransientAvailability;
use availsim::core::{nines, ModelParams};
use availsim::hra::Hep;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let params = ModelParams::raid5_3plus1(1e-4, Hep::new(0.01)?)?;
    println!("RAID5(3+1), λ=1e-4/h, hep=0.01 — availability over a mission\n");

    let conv = TransientAvailability::new(PolicyModel::Conventional, params)?;
    let fo = TransientAvailability::new(PolicyModel::FailOver, params)?;

    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "t (h)", "A(t) conv", "interval conv", "A(t) fail-over"
    );
    for &t in &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
        println!(
            "{:>10} {:>16.9} {:>16.9} {:>16.9}",
            t,
            conv.point_availability(t)?,
            conv.interval_availability(t)?,
            fo.point_availability(t)?
        );
    }

    let steady_conv = conv.steady_state_availability()?;
    let steady_fo = fo.steady_state_availability()?;
    println!(
        "{:>10} {:>16.9} {:>16} {:>16.9}",
        "steady", steady_conv, "-", steady_fo
    );

    println!(
        "\nnines at steady state: conventional {:.2}, fail-over {:.2}",
        nines::nines(steady_conv),
        nines::nines(steady_fo)
    );

    // Where does the transient matter? Find the time at which A(t) has
    // covered 95% of the gap to steady state.
    let gap_time = {
        let target = steady_conv + 0.05 * (1.0 - steady_conv);
        let mut t = 1.0;
        while conv.point_availability(t)? > target && t < 1e6 {
            t *= 1.5;
        }
        t
    };
    println!(
        "\nthe conventional array settles to within 5% of its stationary gap in ~{gap_time:.0} h;"
    );
    println!("shorter missions see strictly better availability than the steady number suggests.");
    Ok(())
}
