//! Bottom-up human-error quantification: derive the hep that the
//! availability models consume from HEART task analysis and a THERP
//! procedure tree, then show what that hep does to a RAID5 array.
//!
//! ```text
//! cargo run --release --example hra_calculator
//! ```

use availsim::core::markov::Raid5Conventional;
use availsim::core::ModelParams;
use availsim::hra::heart::{GenericTask, HeartAssessment};
use availsim::hra::sources::reference_bands;
use availsim::hra::therp::disk_replacement_tree;
use availsim::hra::{Hep, RecoveryModel};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("== published hep bands (the paper's Section II survey) ==");
    for band in reference_bands() {
        println!(
            "  {:<14?} {:<55} [{:>6.3}, {:>6.3}]",
            band.source, band.task, band.low, band.high
        );
    }

    println!("\n== HEART assessment: disk replacement in a degraded array ==");
    let mut heart = HeartAssessment::new(GenericTask::RestoreByProcedure);
    heart
        .condition("similar-looking slots (poor discriminability)", 8.0, 0.1)?
        .condition("time pressure from degraded array", 11.0, 0.05)?
        .condition("technician fatigue (night shift)", 1.2, 0.5)?;
    let hep = heart.hep()?;
    println!("  base task: restore-by-procedure (nominal hep 0.003)");
    for c in heart.conditions() {
        println!("  + {:<50} x{:.2}", c.name, c.effective_multiplier());
    }
    println!("  assessed hep = {:.5}", hep.value());
    println!(
        "  within the paper's enterprise band [0.001, 0.01]: {}",
        hep.is_within_enterprise_band()
    );

    println!("\n== THERP event tree for the same procedure ==");
    let tree = disk_replacement_tree(hep)?;
    for step in tree.steps() {
        println!(
            "  {:<28} hep {:.5}  recovery {:.0}%  unrecovered {:.5}",
            step.name,
            step.hep.value(),
            100.0 * step.recovery_probability,
            step.unrecovered_error_probability()
        );
    }
    println!("  procedure-level hep = {:.5}", tree.overall_hep()?.value());
    println!("  dominant step: {}", tree.dominant_step()?.name);

    println!("\n== recovery dynamics (paper defaults μ_he=1, λ_crash=0.01) ==");
    let recovery = RecoveryModel::paper_defaults(hep)?;
    println!(
        "  mean outage if the wrong disk is pulled: {:.2} h",
        recovery.mean_outage_hours()
    );
    println!(
        "  expected attempts until undone:          {:.3}",
        recovery.expected_attempts()
    );
    println!(
        "  chance the outage escalates to data loss: {:.3}%",
        100.0 * recovery.escalation_probability()
    );

    println!("\n== what this hep does to a RAID5(3+1) at λ=1e-6 ==");
    for (label, h) in [
        ("hep = 0 (traditional model)", Hep::ZERO),
        ("assessed hep", hep),
    ] {
        let params = ModelParams::raid5_3plus1(1e-6, h)?;
        let solved = Raid5Conventional::new(params)?.solve()?;
        println!(
            "  {:<28} {:.3} nines ({:>8.2} min downtime/yr)",
            label,
            solved.nines(),
            solved.downtime_minutes_per_year()
        );
    }
    Ok(())
}
