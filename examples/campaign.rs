//! Drives an experiment campaign through the `availsim-exp` subsystem:
//! parse a spec (a file path argument, or the built-in HEP x lambda
//! surface), expand the grid, run it on all cores, and print every report
//! flavor.
//!
//! ```text
//! cargo run --release --example campaign [spec-file] [workers]
//! ```

use availsim::exp::{plan, report, run, spec::Scenario};
use std::error::Error;

const DEFAULT_SPEC: &str = "\
[campaign]
name = hep-lambda-surface
seed = 7
model = markov-conventional

[axes]
lambda = [5e-7, 1e-6, 5e-6, 1e-5]
hep = [0, 0.001, 0.01]
raid = r5-3
";

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let text = match args.next() {
        Some(path) => {
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?
        }
        None => DEFAULT_SPEC.to_string(),
    };
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);

    let scenario = Scenario::parse(&text)?;
    let plan = plan::expand(&scenario)?;
    println!("{}", plan.describe());

    let result = run::run(
        &plan,
        &run::RunConfig {
            workers,
            ..Default::default()
        },
    )?;
    print!("{}", report::summary(&result));

    println!("\nCSV:");
    print!("{}", report::to_csv(&result));

    // The same campaign at one worker is bit-identical — the runner's
    // determinism contract.
    let single = run::run(
        &plan,
        &run::RunConfig {
            workers: 1,
            ..Default::default()
        },
    )?;
    assert_eq!(report::to_csv(&result), report::to_csv(&single));
    println!(
        "\nverified: {}-worker run is byte-identical to 1 worker",
        result.workers
    );
    Ok(())
}
