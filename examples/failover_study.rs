//! The paper's Fig. 7 extended into a policy study: conventional vs
//! automatic fail-over across a grid of failure rates and human-error
//! probabilities, with MTTDL and sensitivity analysis.
//!
//! ```text
//! cargo run --release --example failover_study
//! ```

use availsim::core::analysis::compare_policies;
use availsim::core::markov::{Raid5Conventional, Raid5FailOver};
use availsim::core::sensitivity::{sensitivities, PolicyModel};
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::storage::HOURS_PER_YEAR;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("Replacement-policy study, RAID5(3+1), paper service rates\n");

    println!(
        "{:<10} {:<8} {:>14} {:>14} {:>13}",
        "lambda", "hep", "conv (nines)", "fo (nines)", "improvement"
    );
    for &lambda in &[1e-7, 1e-6, 1e-5] {
        for &hep in &[0.0, 0.001, 0.01] {
            let params = ModelParams::raid5_3plus1(lambda, Hep::new(hep)?)?;
            let cmp = compare_policies(params)?;
            println!(
                "{:<10.0e} {:<8} {:>14.3} {:>14.3} {:>12.1}x",
                lambda,
                hep,
                cmp.conventional_nines(),
                cmp.failover_nines(),
                cmp.improvement()
            );
        }
    }

    // MTTDL view (the reliability metric Markov models are usually quoted in).
    println!("\nMTTDL (years), λ=1e-6:");
    for &hep in &[0.0, 0.001, 0.01] {
        let params = ModelParams::raid5_3plus1(1e-6, Hep::new(hep)?)?;
        let conv = Raid5Conventional::new(params)?.mttdl_hours()? / HOURS_PER_YEAR;
        let fo = Raid5FailOver::new(params)?.mttdl_hours()? / HOURS_PER_YEAR;
        println!("  hep={hep:<6} conventional {conv:>12.0}  fail-over {fo:>12.0}");
    }

    // Where does each policy's downtime come from? Elasticities tell us
    // which knob to turn.
    println!(
        "\nunavailability elasticities at λ=1e-6, hep=0.01 (1% change in θ -> x% change in U):"
    );
    let params = ModelParams::raid5_3plus1(1e-6, Hep::new(0.01)?)?;
    for (name, model) in [
        ("conventional", PolicyModel::Conventional),
        ("fail-over", PolicyModel::FailOver),
    ] {
        println!("  {name}:");
        for s in sensitivities(model, params, 1e-4)? {
            println!("    {:<14} {:>8.3}", s.parameter, s.elasticity);
        }
    }

    println!("\ntakeaway: under conventional replacement the hep elasticity is ~1 —");
    println!("human error is the availability bottleneck; fail-over moves the");
    println!("bottleneck back to the double-failure path.");
    Ok(())
}
