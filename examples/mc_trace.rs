//! Reproduces the paper's Fig. 1: a Monte-Carlo timeline of a RAID5 (3+1)
//! array where wrong disk replacements (human errors) cause data
//! unavailability and double failures cause data loss.
//!
//! ```text
//! cargo run --release --example mc_trace [seed]
//! ```
//!
//! Rates are scaled up (λ = 2e-3/h, hep = 0.15) so a single 2000-hour window
//! shows several incidents, like the paper's illustration.

use availsim::core::mc::ConventionalMc;
use availsim::core::ModelParams;
use availsim::hra::Hep;
use availsim::sim::rng::SimRng;
use availsim::storage::EventTrace;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2017);

    let params = ModelParams::raid5_3plus1(2e-3, Hep::new(0.15)?)?;
    let mc = ConventionalMc::new(params)?;
    let mut rng = SimRng::seed_from(seed);
    let mut trace = EventTrace::new();
    let horizon = 2_000.0;
    let outcome = mc.simulate_once(horizon, &mut rng, Some(&mut trace));

    println!("MC timeline, RAID5(3+1), λ=2e-3/h, hep=0.15, seed {seed}");
    println!("{}", "-".repeat(64));
    print!("{}", trace.render());
    println!("{}", "-".repeat(64));
    println!(
        "mission: {horizon} h | downtime {:.1} h | availability {:.4}",
        outcome.downtime_hours,
        1.0 - outcome.downtime_hours / horizon
    );
    println!(
        "data-unavailability events (human error): {} | data-loss events: {}",
        outcome.du_events, outcome.dl_events
    );
    println!(
        "downtime breakdown: {:.1} h human error, {:.1} h data loss",
        outcome.du_downtime_hours, outcome.dl_downtime_hours
    );
    Ok(())
}
